"""Compile-time noise IR: Kraus channels attached to pattern operations.

The paper's noise story (Section I / experiment E15) — errors enter MBQC at
resource-state *preparation*, *entangling*, and *measurement* rather than at
gates — used to live as a bag of three probabilities that every runner
reinterpreted on its own.  This module makes noise a first-class compile
artifact instead:

- :class:`Channel` is a validated Kraus map (named constructors for
  depolarizing, dephasing, and amplitude damping, plus arbitrary
  user-supplied Kraus lists), classified once as a Pauli mixture or not.
- :class:`ChannelNoiseModel` assigns a channel per operation type (after
  each ``N``, on both qubits of each ``E``) plus a classical readout-flip
  probability per ``M``.
- :func:`as_channel_model` coerces anything noise-shaped — including the
  back-compat probability bag :class:`repro.mbqc.noise.NoiseModel` — to a
  :class:`ChannelNoiseModel`.

:func:`repro.mbqc.compile.lower_noise` lowers a model onto a compiled
pattern as explicit ``ChannelOp``s, so every execution engine (dense
trajectory, stabilizer trajectory, exact density matrix) consumes the *same*
noise program: trajectory engines sample Pauli mixtures per element, the
density engine integrates arbitrary channels exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.linalg.gates import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z
from repro.sim.density import (
    amplitude_damping_kraus,
    dephasing_kraus,
    depolarizing_kraus,
    validate_kraus,
)

_PAULI_MATS = (IDENTITY, PAULI_X, PAULI_Y, PAULI_Z)


@dataclass(frozen=True, eq=False)
class Channel:
    """A named, validated quantum channel in Kraus form.

    Construction validates trace preservation (``Σ K†K ≈ I``) and uniform
    operator shape; see :func:`repro.sim.density.validate_kraus`.  Use the
    classmethod constructors for the standard channels, or
    :meth:`from_kraus` for arbitrary operator lists.
    """

    name: str
    kraus: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        ops = validate_kraus(self.kraus, where=f"channel {self.name!r}")
        for op in ops:
            op.setflags(write=False)
        object.__setattr__(self, "kraus", ops)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_kraus(cls, kraus: Sequence[np.ndarray], name: str = "custom") -> "Channel":
        """A channel from a user-supplied Kraus list (validated)."""
        return cls(name, tuple(kraus))

    @classmethod
    def depolarizing(cls, p: float) -> "Channel":
        """Identity w.p. ``1−p``, else a uniformly random Pauli.

        ``p = 0`` short-circuits to the single-operator identity channel:
        the general Kraus set would carry three zero operators that the
        density engine applies as dead work, and the explicit form makes
        the trivial classification (``is_identity`` → ``is_trivial`` →
        the ``average_fidelity`` fast path) exact rather than numerical.
        """
        if p == 0.0:
            return cls(f"depolarizing({p:g})", (IDENTITY,))
        return cls(f"depolarizing({p:g})", tuple(depolarizing_kraus(p)))

    @classmethod
    def dephasing(cls, p: float) -> "Channel":
        """Phase flip (Z) w.p. ``p``; ``p = 0`` short-circuits to identity."""
        if p == 0.0:
            return cls(f"dephasing({p:g})", (IDENTITY,))
        return cls(f"dephasing({p:g})", tuple(dephasing_kraus(p)))

    @classmethod
    def amplitude_damping(cls, gamma: float) -> "Channel":
        """Amplitude damping with decay probability ``gamma``; ``gamma = 0``
        short-circuits to identity like the ``p = 0`` constructors."""
        if gamma == 0.0:
            return cls(f"amplitude_damping({gamma:g})", (IDENTITY,))
        return cls(f"amplitude_damping({gamma:g})", tuple(amplitude_damping_kraus(gamma)))

    # -- classification ------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self.kraus[0].shape[0].bit_length() - 1

    @cached_property
    def pauli_probs(self) -> Optional[Tuple[float, float, float, float]]:
        """``(p_I, p_X, p_Y, p_Z)`` when every Kraus operator is
        proportional to a single-qubit Pauli, else ``None``.

        Pauli mixtures are the channels trajectory engines can sample as
        per-element Pauli faults (and that keep a Clifford pattern on the
        stabilizer fast path); anything else needs exact integration on the
        density engine.
        """
        if self.num_qubits != 1:
            return None
        probs = [0.0, 0.0, 0.0, 0.0]
        for k in self.kraus:
            for i, pauli in enumerate(_PAULI_MATS):
                # K ∝ P  ⇔  (P†K) ∝ I; the weight is |c|² = ‖K‖²_F / 2.
                m = pauli.conj().T @ k
                if abs(m[0, 1]) < 1e-12 and abs(m[1, 0]) < 1e-12 and abs(
                    m[0, 0] - m[1, 1]
                ) < 1e-12:
                    probs[i] += float(np.real(np.vdot(k, k))) / 2.0
                    break
            else:
                return None
        return tuple(probs)  # type: ignore[return-value]

    def is_identity(self) -> bool:
        """True iff the channel is the identity map (trivial noise)."""
        pp = self.pauli_probs
        return pp is not None and pp[1] == pp[2] == pp[3] == 0.0


@dataclass(frozen=True)
class ChannelNoiseModel:
    """Per-operation-type noise: Kraus channels plus readout flips.

    ``prep`` is applied to each node right after its ``N`` preparation,
    ``ent`` to both qubits of each ``E`` entangler, and ``meas_flip`` is
    the probability that a measurement's *recorded* outcome is flipped
    (corrupting downstream adaptivity — the classical error channel).
    ``prep``/``ent`` must be single-qubit channels.
    """

    prep: Optional[Channel] = None
    ent: Optional[Channel] = None
    meas_flip: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.meas_flip <= 1.0:
            raise ValueError(f"meas_flip must be a probability, got {self.meas_flip}")
        for field_name in ("prep", "ent"):
            ch = getattr(self, field_name)
            if ch is not None and ch.num_qubits != 1:
                raise ValueError(
                    f"{field_name} channel {ch.name!r} acts on {ch.num_qubits} "
                    f"qubits; per-op lowering needs single-qubit channels"
                )

    def is_trivial(self) -> bool:
        return (
            (self.prep is None or self.prep.is_identity())
            and (self.ent is None or self.ent.is_identity())
            and self.meas_flip == 0.0
        )

    def is_pauli(self) -> bool:
        """True iff every channel is a Pauli mixture (readout flips are
        classical and always fine) — the condition for trajectory sampling."""
        return all(
            ch is None or ch.pauli_probs is not None for ch in (self.prep, self.ent)
        )


def as_channel_model(noise: object) -> Optional["ChannelNoiseModel"]:
    """Coerce anything noise-shaped to a :class:`ChannelNoiseModel`.

    Accepts ``None``, a :class:`ChannelNoiseModel`, any object with a
    ``channels()`` lowering method (the :class:`repro.mbqc.noise.NoiseModel`
    shim), or a bare probability bag exposing ``p_prep``/``p_ent``/
    ``p_meas`` floats (lowered to depolarizing channels + readout flips,
    matching the historical Monte-Carlo semantics).
    """
    if noise is None:
        return None
    if isinstance(noise, ChannelNoiseModel):
        return noise
    lower = getattr(noise, "channels", None)
    if callable(lower):
        model = lower()
        if not isinstance(model, ChannelNoiseModel):
            raise TypeError(
                f"{type(noise).__name__}.channels() returned "
                f"{type(model).__name__}, expected ChannelNoiseModel"
            )
        return model
    try:
        p_prep = float(getattr(noise, "p_prep"))
        p_ent = float(getattr(noise, "p_ent"))
        p_meas = float(getattr(noise, "p_meas"))
    except (AttributeError, TypeError, ValueError):
        raise TypeError(
            f"cannot interpret {type(noise).__name__} as a noise model: "
            f"expected ChannelNoiseModel, a .channels() provider, or "
            f"p_prep/p_ent/p_meas probabilities"
        ) from None
    return ChannelNoiseModel(
        prep=Channel.depolarizing(p_prep) if p_prep > 0.0 else None,
        ent=Channel.depolarizing(p_ent) if p_ent > 0.0 else None,
        meas_flip=p_meas,
    )
