"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``compile``    compile MBQC-QAOA for a problem and print the protocol summary
``run``        compile, execute, and sample solutions
``verify``     branch-exhaustive determinism check of the compiled pattern
``resources``  print the Section III.A resource table for a problem at
               several depths
``solve``      run the iterative (Section V) solver to a concrete assignment
``lint``       static analysis: verify the compiled IR, print the resource
               estimate, and/or run the seeded-stream contract linter over
               a source tree (``--contracts``); exits 1 on error-severity
               diagnostics (see README's diagnostic code table)

``run``, ``verify``, and ``lint`` take ``--backend`` with choices drawn
from the engine registry at parse time (``auto`` plus every registered
engine — ``density``, ``mps``, ``stabilizer``, ``statevector``):
``auto`` dispatches Clifford-angle patterns (e.g. ``--gamma 0 --beta 0``)
to the stabilizer-tableau engine once the live register outgrows dense
reach, and bounded-interaction-width non-Clifford patterns to the
matrix-product-state engine; forcing ``stabilizer`` on a non-Clifford
pattern fails with a clear error.  ``lint --backend NAME`` additionally
pre-flights the choice: it reports whether that engine supports the
pattern and fits ``--budget``, failing with the R101 diagnostic when not.  ``run`` additionally takes ``--noise RATE``
(uniform per-operation depolarizing + readout flips, the E15 model) and
``--exact``, which integrates the channels exactly on the density-matrix
engine — the reported ``<cost>`` is then the true noisy expectation, no
sampling anywhere.  ``verify --backend density`` compares branch *Choi
states*: exact map equality with no phase bookkeeping.

Problems are specified as ``kind:args``:

- ``ring:N``            MaxCut on the N-cycle
- ``regular:D,N[,SEED]``  MaxCut on a random D-regular graph
- ``complete:N``        MaxCut on K_N
- ``mis-ring:N``        maximum independent set on the N-cycle (penalty QUBO)
- ``partition:N[,SEED]`` random number partitioning
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import compile_qaoa_pattern, estimate_resources
from repro.core.resources import format_table, resource_table
from repro.core.reuse import reuse_summary
from repro.core.verify import check_pattern_determinism
from repro.mbqc import (
    PatternError,
    get_backend,
    list_backends,
    lower_noise,
    run_pattern,
    select_backend,
)
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut, MaximumIndependentSet, NumberPartitioning
from repro.problems.qubo import QUBO
from repro.qaoa import grid_search_p1, optimize_qaoa
from repro.qaoa.iterative import iterative_quantum_optimize
from repro.utils import int_to_bitstring
from repro.utils.rng import ensure_rng


def parse_problem(spec: str) -> Tuple[str, QUBO, object]:
    """Parse a ``kind:args`` spec into ``(name, qubo, problem_object)``."""
    if ":" not in spec:
        raise ValueError(f"problem spec {spec!r} must look like kind:args")
    kind, _, args = spec.partition(":")
    parts = [p for p in args.split(",") if p]
    try:
        nums = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"non-integer arguments in {spec!r}") from None
    if kind == "ring":
        (n,) = nums
        mc = MaxCut.ring(n)
        return f"maxcut-ring-{n}", mc.to_qubo(), mc
    if kind == "regular":
        if len(nums) == 2:
            d, n = nums
            seed = 0
        else:
            d, n, seed = nums
        mc = MaxCut.random_regular(d, n, seed=seed)
        return f"maxcut-{d}regular-{n}", mc.to_qubo(), mc
    if kind == "complete":
        (n,) = nums
        mc = MaxCut.complete(n)
        return f"maxcut-K{n}", mc.to_qubo(), mc
    if kind == "mis-ring":
        (n,) = nums
        from repro.utils import cycle_graph

        mis = MaximumIndependentSet(*cycle_graph(n))
        return f"mis-ring-{n}", mis.to_penalty_qubo(), mis
    if kind == "partition":
        if len(nums) == 1:
            n, seed = nums[0], 0
        else:
            n, seed = nums
        npart = NumberPartitioning.random(n, seed=seed)
        return f"partition-{n}", npart.to_qubo(), npart
    raise ValueError(f"unknown problem kind {kind!r}")


def _resolve_params(
    qubo: QUBO, p: int, gammas: Optional[List[float]], betas: Optional[List[float]],
    optimize: bool, seed: int,
) -> Tuple[List[float], List[float]]:
    if gammas and betas:
        if len(gammas) != p or len(betas) != p:
            raise ValueError("need p gammas and p betas")
        return gammas, betas
    if qubo.num_variables > 20:
        raise ValueError("parameter optimization needs <= 20 variables; pass --gamma/--beta")
    cost = qubo.cost_vector()
    if p == 1 and not optimize:
        res = grid_search_p1(cost, resolution=20)
    else:
        res = optimize_qaoa(cost, p=p, restarts=4, seed=seed)
    return list(res.gammas), list(res.betas)


def cmd_compile(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas, schedule=args.schedule)
    rep = estimate_resources(compiled)
    total, peak, factor = reuse_summary(compiled.pattern)
    print(f"problem           {name}")
    print(f"depth p           {compiled.p}")
    print(f"gammas            {[round(g, 4) for g in gammas]}")
    print(f"betas             {[round(b, 4) for b in betas]}")
    print(f"schedule          {compiled.schedule}")
    print(f"graph-state nodes {compiled.num_nodes()}")
    print(f"entangling CZs    {compiled.num_entanglers()}")
    print(f"measurements      {len(compiled.pattern.measured_nodes())}")
    print(f"peak live qubits  {peak}  (reuse factor {factor:.2f})")
    print(f"paper bounds      N_Q<={rep.bound_ancilla_qubits} ancillas, N_E<={rep.bound_entanglers}")
    print(f"gate model        {rep.gate_model_qubits} qubits, {rep.gate_model_entanglers} entanglers")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    name, qubo, problem = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas)
    program = compiled.executable()
    noise = NoiseModel(p_prep=args.noise, p_ent=args.noise, p_meas=args.noise) \
        if args.noise else None
    cost = qubo.cost_vector()
    n = qubo.num_variables
    measured = len(compiled.pattern.measured_nodes())
    rng = ensure_rng(args.seed)

    if args.exact:
        if args.backend not in ("auto", "density"):
            raise ValueError(
                f"--exact integrates on the density engine; it cannot be "
                f"combined with --backend {args.backend}"
            )
        engine = get_backend("density")
        run = engine.integrate(program, noise=noise)
        probs = run.probabilities()
        exact_cost = float(probs @ cost)
        support = probs > 1e-12
        best_idx = int(np.flatnonzero(support)[np.argmin(cost[support])])
        print(f"problem        {name}")
        print(f"backend        {engine.name} (exact channel integration)")
        print(f"pattern        {compiled.num_nodes()} nodes, {measured} measured, "
              f"{run.branches} merged outcome branches integrated")
        if noise is not None:
            print(f"noise          uniform rate {args.noise:g} (prep/ent depolarizing"
                  f" + readout flips)")
        print(f"<cost>         {exact_cost:.4f}  (exact, no sampling)")
        print(f"best cost      {cost[best_idx]:.4f}  (reachable support)")
        print(f"best solution  {''.join(map(str, int_to_bitstring(best_idx, n)))}")
        if isinstance(problem, MaxCut):
            print(f"best cut       {problem.cut_value(int_to_bitstring(best_idx, n)):.0f} "
                  f"(optimum {problem.max_cut_value():.0f})")
        return 0

    if noise is not None:
        program = lower_noise(program, noise)
    engine = select_backend(program, args.backend, dense_outputs=True)
    if noise is not None:
        runs = min(args.shots, 32)
        batch = engine.sample_batch(program, runs, rng, keep_raw=True)
        samples = batch.sample_bitstrings(args.shots, rng)
        outcomes_consumed = measured * runs
    else:
        result = run_pattern(
            compiled.pattern, seed=args.seed, compiled=program, backend=engine
        )
        probs = np.abs(result.state_array()) ** 2
        probs = probs / probs.sum()
        samples = rng.choice(probs.size, size=args.shots, p=probs)
        outcomes_consumed = len(result.outcomes)
    costs = cost[samples]
    best_idx = int(samples[np.argmin(costs)])
    print(f"problem        {name}")
    print(f"backend        {engine.name}")
    print(f"pattern        {compiled.num_nodes()} nodes, "
          f"{outcomes_consumed} measurement outcomes consumed")
    if noise is not None:
        print(f"noise          uniform rate {args.noise:g}")
    print(f"shots          {args.shots}")
    print(f"<cost>         {costs.mean():.4f}")
    print(f"best cost      {costs.min():.4f}")
    print(f"best solution  {''.join(map(str, int_to_bitstring(best_idx, n)))}")
    if isinstance(problem, MaxCut):
        print(f"best cut       {problem.cut_value(int_to_bitstring(best_idx, n)):.0f} "
              f"(optimum {problem.max_cut_value():.0f})")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas)
    program = compiled.executable()
    engine = select_backend(program, args.backend)
    ok = check_pattern_determinism(
        compiled.pattern,
        max_branches=args.max_branches,
        seed=args.seed,
        backend=engine,
        compiled=program,
    )
    m = len(compiled.pattern.measured_nodes())
    print(f"problem        {name}")
    print(f"pattern        {compiled.num_nodes()} nodes, {m} measured, "
          f"peak live {program.max_live}")
    print(f"clifford       {'yes' if program.is_clifford else 'no'}")
    print(f"backend        {engine.name}")
    if args.max_branches and args.max_branches < (1 << m):
        # The budget bounds the sample; the stabilizer path additionally
        # skips unreachable branches and may substitute trajectory draws.
        print(f"branch budget  {args.max_branches} of {1 << m}")
    else:
        print(f"branches       all {1 << m}")
    print(f"deterministic  {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def cmd_resources(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    rows = resource_table([(name, qubo)], depths=args.depths)
    print(format_table(rows))
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    name, qubo, problem = parse_problem(args.problem)
    res = iterative_quantum_optimize(qubo.to_ising(), stop_at=args.stop_at)
    bits = res.bits()
    print(f"problem      {name}")
    print(f"rounds       {len(res.steps)}")
    print(f"assignment   {''.join(map(str, bits))}")
    print(f"cost         {qubo.cost(bits):.4f}")
    if isinstance(problem, MaxCut):
        print(f"cut          {problem.cut_value(bits):.0f} "
              f"(optimum {problem.max_cut_value():.0f})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze, format_contract_report, lint_tree

    failed = False
    ran = False

    if args.problem is not None or args.pattern_json is not None:
        ran = True
        if args.pattern_json is not None:
            from repro.mbqc.compile import compile_pattern
            from repro.mbqc.serialize import pattern_from_json

            with open(args.pattern_json, encoding="utf-8") as fh:
                pattern = pattern_from_json(fh.read())
            program = compile_pattern(pattern)
            name = args.pattern_json
        else:
            name, qubo, _ = parse_problem(args.problem)
            gammas, betas = _resolve_params(
                qubo, args.p, args.gamma, args.beta, args.optimize, args.seed
            )
            program = compile_qaoa_pattern(qubo, gammas, betas).executable()
        if args.noise:
            noise = NoiseModel(
                p_prep=args.noise, p_ent=args.noise, p_meas=args.noise
            )
            program = lower_noise(program, noise)
        report = analyze(program)
        print(f"lint           {name}")
        print(report.format(budget=args.budget))
        if not report.ok or (args.strict and report.warnings):
            failed = True
        try:
            engine = select_backend(
                program, prefer=args.backend, max_bytes=args.budget
            )
            print(f"backend        {engine.name} fits the budget")
        except PatternError as exc:
            print(f"backend        {args.backend}: {exc}")
            failed = True

    if args.contracts is not None:
        ran = True
        diags = lint_tree(args.contracts)
        print(f"contracts      {args.contracts}")
        print(format_contract_report(diags))
        if diags:
            failed = True

    if not ran:
        raise ValueError(
            "nothing to lint: pass a problem spec, --pattern-json, or "
            "--contracts [PATH]"
        )
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measurement-based QAOA (Stollenwerk & Hadfield, 2024) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("problem", help="problem spec, e.g. ring:6 or regular:3,8")
        p.add_argument("--p", type=int, default=1, help="QAOA depth")
        p.add_argument("--gamma", type=float, nargs="*", default=None)
        p.add_argument("--beta", type=float, nargs="*", default=None)
        p.add_argument("--optimize", action="store_true",
                       help="local-optimize parameters instead of grid search")
        p.add_argument("--seed", type=int, default=0)

    pc = sub.add_parser("compile", help="compile and summarize the MBQC protocol")
    add_common(pc)
    pc.add_argument("--schedule", choices=["eager", "graph-first"], default="eager")
    pc.set_defaults(func=cmd_compile)

    backend_kwargs = dict(
        choices=["auto", *list_backends()],
        default="auto",
        help="pattern-execution engine (auto dispatches Clifford patterns "
        "to the stabilizer tableau beyond dense reach and bounded-"
        "interaction-width non-Clifford patterns to the mps engine; "
        "density evolves the full density operator, integrating channels "
        "exactly)",
    )

    pr = sub.add_parser("run", help="compile, execute, and sample")
    add_common(pr)
    pr.add_argument("--shots", type=int, default=256)
    pr.add_argument("--backend", **backend_kwargs)
    pr.add_argument("--noise", type=float, default=0.0,
                    help="uniform per-operation error rate (depolarizing "
                    "prep/ent + readout flips, the E15 model)")
    pr.add_argument("--exact", action="store_true",
                    help="integrate noise channels exactly on the density "
                    "engine: <cost> is the true noisy expectation, no "
                    "sampling anywhere")
    pr.set_defaults(func=cmd_run)

    pd = sub.add_parser("verify", help="branch-exhaustive determinism check")
    add_common(pd)
    pd.add_argument("--max-branches", type=int, default=64, dest="max_branches",
                    help="sample at most this many outcome branches")
    pd.add_argument("--backend", **backend_kwargs)
    pd.set_defaults(func=cmd_verify)

    ps = sub.add_parser("resources", help="Section III.A resource table")
    ps.add_argument("problem")
    ps.add_argument("--depths", type=int, nargs="+", default=[1, 2, 4])
    ps.set_defaults(func=cmd_resources)

    pv = sub.add_parser("solve", help="iterative quantum optimization (Sec. V)")
    pv.add_argument("problem")
    pv.add_argument("--stop-at", type=int, default=3, dest="stop_at")
    pv.set_defaults(func=cmd_solve)

    pl = sub.add_parser(
        "lint",
        help="static IR verification, resource estimate, contract linter",
    )
    pl.add_argument("problem", nargs="?", default=None,
                    help="problem spec to compile and analyze (optional "
                    "when --pattern-json or --contracts is given)")
    pl.add_argument("--p", type=int, default=1, help="QAOA depth")
    pl.add_argument("--gamma", type=float, nargs="*", default=None)
    pl.add_argument("--beta", type=float, nargs="*", default=None)
    pl.add_argument("--optimize", action="store_true",
                    help="local-optimize parameters instead of grid search")
    pl.add_argument("--seed", type=int, default=0)
    pl.add_argument("--noise", type=float, default=0.0,
                    help="lower this uniform error rate into the channel IR "
                    "before analyzing (exercises the noise-IR checks)")
    pl.add_argument("--pattern-json", default=None, dest="pattern_json",
                    help="analyze a serialized pattern file instead of "
                    "compiling a problem")
    pl.add_argument("--budget", type=int, default=1 << 26,
                    help="byte budget for the shot-chunk row of the "
                    "resource report (default 64 MiB)")
    pl.add_argument("--backend", **backend_kwargs)
    pl.add_argument("--contracts", nargs="?", const="src", default=None,
                    metavar="PATH",
                    help="also run the seeded-stream contract linter over "
                    "PATH (default: src)")
    pl.add_argument("--strict", action="store_true",
                    help="treat warning-severity diagnostics as failures")
    pl.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
