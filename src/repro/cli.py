"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``compile``    compile MBQC-QAOA for a problem and print the protocol summary
``run``        compile, execute, and sample solutions
``verify``     branch-exhaustive determinism check of the compiled pattern
``resources``  print the Section III.A resource table for a problem at
               several depths
``solve``      run the iterative (Section V) solver to a concrete assignment
``lint``       static analysis: verify the compiled IR, print the resource
               estimate, and/or run the seeded-stream contract linter over
               a source tree (``--contracts``); exits 1 on error-severity
               diagnostics (see README's diagnostic code table)
``serve``      async job server: accept run/verify/sample jobs as JSON
               lines (stdin by default, or a local TCP socket with
               ``--port``), coalesce same-pattern jobs into fused
               ``sample_batch`` calls across a worker pool, and stream
               per-block events plus a final records-sha256 receipt per
               job; ``--cache-dir`` adds the content-addressed
               compiled-pattern cache (shared with ``run --cache-dir``)

``run``, ``verify``, and ``lint`` take ``--backend`` with choices drawn
from the engine registry at parse time (``auto`` plus every registered
engine — ``density``, ``mps``, ``stabilizer``, ``statevector``):
``auto`` dispatches Clifford-angle patterns (e.g. ``--gamma 0 --beta 0``)
to the stabilizer-tableau engine once the live register outgrows dense
reach, and bounded-interaction-width non-Clifford patterns to the
matrix-product-state engine; forcing ``stabilizer`` on a non-Clifford
pattern fails with a clear error.  ``lint --backend NAME`` additionally
pre-flights the choice: it reports whether that engine supports the
pattern and fits ``--budget``, failing with the R101 diagnostic when not.  ``run`` additionally takes ``--noise RATE``
(uniform per-operation depolarizing + readout flips, the E15 model) and
``--exact``, which integrates the channels exactly on the density-matrix
engine — the reported ``<cost>`` is then the true noisy expectation, no
sampling anywhere.  ``verify --backend density`` compares branch *Choi
states*: exact map equality with no phase bookkeeping.

``run`` also exposes the :mod:`repro.exec` supervision layer:
``--job-dir DIR`` turns the shots into a checkpointed job (completed shot
blocks persist; re-running — or ``--resume JOBDIR`` with no problem
argument — finishes only the missing blocks, bit-identically, and prints
a ``records sha256`` receipt); ``--exact --shards N`` integrates under
the shard supervisor (``--retries``, ``--shard-timeout``); and
``--fallback CHAIN`` routes sampling through a backend degradation chain
(``'mps->density->statevector'``), reporting every link skipped as an
R105 diagnostic.  ``lint --fallback-chain CHAIN`` pre-flights such a
chain statically.

Problems are specified as ``kind:args``:

- ``ring:N``            MaxCut on the N-cycle
- ``regular:D,N[,SEED]``  MaxCut on a random D-regular graph
- ``complete:N``        MaxCut on K_N
- ``mis-ring:N``        maximum independent set on the N-cycle (penalty QUBO)
- ``partition:N[,SEED]`` random number partitioning
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import compile_qaoa_pattern, estimate_resources
from repro.core.resources import format_table, resource_table
from repro.core.reuse import reuse_summary
from repro.core.verify import check_pattern_determinism
from repro.mbqc import (
    PatternError,
    get_backend,
    list_backends,
    lower_noise,
    run_pattern,
    select_backend,
)
from repro.mbqc.noise import NoiseModel
from repro.problems import MaxCut, MaximumIndependentSet, NumberPartitioning
from repro.problems.qubo import QUBO
from repro.qaoa import grid_search_p1, optimize_qaoa
from repro.qaoa.iterative import iterative_quantum_optimize
from repro.utils import int_to_bitstring
from repro.utils.rng import ensure_rng


def parse_problem(spec: str) -> Tuple[str, QUBO, object]:
    """Parse a ``kind:args`` spec into ``(name, qubo, problem_object)``."""
    if ":" not in spec:
        raise ValueError(f"problem spec {spec!r} must look like kind:args")
    kind, _, args = spec.partition(":")
    parts = [p for p in args.split(",") if p]
    try:
        nums = [int(p) for p in parts]
    except ValueError:
        raise ValueError(f"non-integer arguments in {spec!r}") from None
    if kind == "ring":
        (n,) = nums
        mc = MaxCut.ring(n)
        return f"maxcut-ring-{n}", mc.to_qubo(), mc
    if kind == "regular":
        if len(nums) == 2:
            d, n = nums
            seed = 0
        else:
            d, n, seed = nums
        mc = MaxCut.random_regular(d, n, seed=seed)
        return f"maxcut-{d}regular-{n}", mc.to_qubo(), mc
    if kind == "complete":
        (n,) = nums
        mc = MaxCut.complete(n)
        return f"maxcut-K{n}", mc.to_qubo(), mc
    if kind == "mis-ring":
        (n,) = nums
        from repro.utils import cycle_graph

        mis = MaximumIndependentSet(*cycle_graph(n))
        return f"mis-ring-{n}", mis.to_penalty_qubo(), mis
    if kind == "partition":
        if len(nums) == 1:
            n, seed = nums[0], 0
        else:
            n, seed = nums
        npart = NumberPartitioning.random(n, seed=seed)
        return f"partition-{n}", npart.to_qubo(), npart
    raise ValueError(f"unknown problem kind {kind!r}")


def _resolve_params(
    qubo: QUBO, p: int, gammas: Optional[List[float]], betas: Optional[List[float]],
    optimize: bool, seed: int,
) -> Tuple[List[float], List[float]]:
    if gammas and betas:
        if len(gammas) != p or len(betas) != p:
            raise ValueError("need p gammas and p betas")
        return gammas, betas
    if qubo.num_variables > 20:
        raise ValueError("parameter optimization needs <= 20 variables; pass --gamma/--beta")
    cost = qubo.cost_vector()
    if p == 1 and not optimize:
        res = grid_search_p1(cost, resolution=20)
    else:
        res = optimize_qaoa(cost, p=p, restarts=4, seed=seed)
    return list(res.gammas), list(res.betas)


def cmd_compile(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas, schedule=args.schedule)
    rep = estimate_resources(compiled)
    total, peak, factor = reuse_summary(compiled.pattern)
    print(f"problem           {name}")
    print(f"depth p           {compiled.p}")
    print(f"gammas            {[round(g, 4) for g in gammas]}")
    print(f"betas             {[round(b, 4) for b in betas]}")
    print(f"schedule          {compiled.schedule}")
    print(f"graph-state nodes {compiled.num_nodes()}")
    print(f"entangling CZs    {compiled.num_entanglers()}")
    print(f"measurements      {len(compiled.pattern.measured_nodes())}")
    print(f"peak live qubits  {peak}  (reuse factor {factor:.2f})")
    print(f"paper bounds      N_Q<={rep.bound_ancilla_qubits} ancillas, N_E<={rep.bound_entanglers}")
    print(f"gate model        {rep.gate_model_qubits} qubits, {rep.gate_model_entanglers} entanglers")
    return 0


def _resume_args(args: argparse.Namespace) -> argparse.Namespace:
    """Rebuild the original ``run`` arguments from a job directory's
    manifest (``repro run --resume JOBDIR``)."""
    from repro.exec import load_manifest
    from repro.mbqc.pattern import PatternError

    manifest = load_manifest(args.resume)
    if manifest is None:
        raise ValueError(f"no checkpoint manifest in {args.resume}")
    meta = manifest.get("cli")
    if not meta:
        raise PatternError(
            f"job directory {args.resume} was not started by the CLI "
            f"(no cli block in its manifest); resume it with "
            f"repro.exec.run_checkpointed on the original program"
        )
    for key, value in meta.items():
        setattr(args, key, value)
    args.job_dir = args.resume
    return args


def _compile_program(compiled_qaoa, cache_dir: Optional[str]):
    """The executable form of a compiled QAOA protocol, optionally via the
    content-addressed compiled-pattern cache (``--cache-dir``)."""
    if cache_dir is None:
        return compiled_qaoa.executable()
    from repro.mbqc.compile import compile_pattern

    return compile_pattern(compiled_qaoa.pattern, cache_dir=cache_dir)


def _print_cache_stats(cache_dir: Optional[str]) -> None:
    if cache_dir is None:
        return
    from repro.serve.cache import get_cache

    for diag in get_cache(cache_dir).stats.diagnostics():
        print(diag.format())


def _cmd_run_job(args: argparse.Namespace) -> int:
    """The checkpointed records-only job path of ``repro run``."""
    from repro.exec import records_digest, run_checkpointed

    name, qubo, _ = parse_problem(args.problem)
    gammas, betas = _resolve_params(
        qubo, args.p, args.gamma, args.beta, args.optimize, args.seed
    )
    program = _compile_program(
        compile_qaoa_pattern(qubo, gammas, betas), getattr(args, "cache_dir", None)
    )
    noise = NoiseModel(p_prep=args.noise, p_ent=args.noise, p_meas=args.noise) \
        if args.noise else None
    # Persist the resolved parameters (not the unresolved flags) so a
    # resume replays the identical program even if the optimizer changes.
    meta = dict(
        problem=args.problem, p=args.p, gamma=list(gammas), beta=list(betas),
        optimize=False, seed=args.seed, noise=args.noise,
        backend=args.backend, shots=args.shots, block_shots=args.block_shots,
    )
    result = run_checkpointed(
        program,
        args.shots,
        job_dir=args.job_dir,
        seed=args.seed,
        backend=args.backend,
        block_shots=args.block_shots,
        noise=noise,
        retries=args.retries,
        cli_meta=meta,
    )
    print(f"problem        {name}")
    print(f"backend        {result.backend} (checkpointed job)")
    print(f"job dir        {result.job_dir}")
    print(f"shots          {args.shots} in {result.n_blocks} blocks of "
          f"{args.block_shots}")
    print(f"blocks reused  {len(result.blocks_reused)}")
    print(f"blocks run     {len(result.blocks_run)}")
    print(f"records sha256 {records_digest(result.run)}")
    _print_cache_stats(getattr(args, "cache_dir", None))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.resume:
        args = _resume_args(args)
    if args.job_dir:
        if args.problem is None:
            raise ValueError("a checkpointed job needs a problem spec")
        if args.exact:
            raise ValueError(
                "--job-dir checkpoints sampling jobs; --exact does not "
                "sample (nothing to checkpoint)"
            )
        return _cmd_run_job(args)
    if args.problem is None:
        raise ValueError("the following arguments are required: problem")
    name, qubo, problem = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas)
    program = _compile_program(compiled, getattr(args, "cache_dir", None))
    noise = NoiseModel(p_prep=args.noise, p_ent=args.noise, p_meas=args.noise) \
        if args.noise else None
    cost = qubo.cost_vector()
    n = qubo.num_variables
    measured = len(compiled.pattern.measured_nodes())
    rng = ensure_rng(args.seed)

    if args.exact:
        if args.backend not in ("auto", "density"):
            raise ValueError(
                f"--exact integrates on the density engine; it cannot be "
                f"combined with --backend {args.backend}"
            )
        engine = get_backend("density")
        if args.shards > 1:
            from repro.exec import supervised_integrate

            run = supervised_integrate(
                program,
                noise=noise,
                shards=args.shards,
                retries=args.retries,
                shard_timeout=args.shard_timeout,
            )
        else:
            run = engine.integrate(program, noise=noise)
        probs = run.probabilities()
        exact_cost = float(probs @ cost)
        support = probs > 1e-12
        best_idx = int(np.flatnonzero(support)[np.argmin(cost[support])])
        print(f"problem        {name}")
        print(f"backend        {engine.name} (exact channel integration)")
        print(f"pattern        {compiled.num_nodes()} nodes, {measured} measured, "
              f"{run.branches} merged outcome branches integrated")
        supervision = getattr(run, "supervision", None)
        if supervision is not None:
            print(f"supervision    {args.shards} shards, "
                  f"{supervision.retries} retries, "
                  f"{supervision.timeouts} timeouts, "
                  f"{supervision.resplits} re-splits, "
                  f"{supervision.in_process} in-process fallbacks")
            for diag in supervision.events:
                print(f"               {diag.format()}")
        if noise is not None:
            print(f"noise          uniform rate {args.noise:g} (prep/ent depolarizing"
                  f" + readout flips)")
        print(f"<cost>         {exact_cost:.4f}  (exact, no sampling)")
        print(f"best cost      {cost[best_idx]:.4f}  (reachable support)")
        print(f"best solution  {''.join(map(str, int_to_bitstring(best_idx, n)))}")
        if isinstance(problem, MaxCut):
            print(f"best cut       {problem.cut_value(int_to_bitstring(best_idx, n)):.0f} "
                  f"(optimum {problem.max_cut_value():.0f})")
        return 0

    if noise is not None:
        program = lower_noise(program, noise)
    if args.fallback:
        from repro.exec import FallbackPolicy, sample_with_fallback

        policy = FallbackPolicy.parse(args.fallback)
        runs = min(args.shots, 32)
        batch, degradation = sample_with_fallback(
            program, runs, policy, args.seed, keep_raw=True
        )
        samples = batch.sample_bitstrings(args.shots, rng)
        costs = cost[samples]
        best_idx = int(samples[np.argmin(costs)])
        print(f"problem        {name}")
        print(f"backend        {degradation.selected} "
              f"(fallback chain {policy.format()})")
        for event in degradation.events:
            print(f"               {event.as_diagnostic().format()}")
        print(f"pattern        {compiled.num_nodes()} nodes, "
              f"{measured * runs} measurement outcomes consumed")
        if noise is not None:
            print(f"noise          uniform rate {args.noise:g}")
        print(f"shots          {args.shots}")
        print(f"<cost>         {costs.mean():.4f}")
        print(f"best cost      {costs.min():.4f}")
        print(f"best solution  {''.join(map(str, int_to_bitstring(best_idx, n)))}")
        if isinstance(problem, MaxCut):
            print(f"best cut       {problem.cut_value(int_to_bitstring(best_idx, n)):.0f} "
                  f"(optimum {problem.max_cut_value():.0f})")
        return 0
    engine = select_backend(program, args.backend, dense_outputs=True)
    if noise is not None:
        runs = min(args.shots, 32)
        batch = engine.sample_batch(program, runs, rng, keep_raw=True)
        samples = batch.sample_bitstrings(args.shots, rng)
        outcomes_consumed = measured * runs
    else:
        result = run_pattern(
            compiled.pattern, seed=args.seed, compiled=program, backend=engine
        )
        probs = np.abs(result.state_array()) ** 2
        probs = probs / probs.sum()
        samples = rng.choice(probs.size, size=args.shots, p=probs)
        outcomes_consumed = len(result.outcomes)
    costs = cost[samples]
    best_idx = int(samples[np.argmin(costs)])
    print(f"problem        {name}")
    print(f"backend        {engine.name}")
    print(f"pattern        {compiled.num_nodes()} nodes, "
          f"{outcomes_consumed} measurement outcomes consumed")
    if noise is not None:
        print(f"noise          uniform rate {args.noise:g}")
    print(f"shots          {args.shots}")
    print(f"<cost>         {costs.mean():.4f}")
    print(f"best cost      {costs.min():.4f}")
    print(f"best solution  {''.join(map(str, int_to_bitstring(best_idx, n)))}")
    if isinstance(problem, MaxCut):
        print(f"best cut       {problem.cut_value(int_to_bitstring(best_idx, n)):.0f} "
              f"(optimum {problem.max_cut_value():.0f})")
    _print_cache_stats(getattr(args, "cache_dir", None))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    gammas, betas = _resolve_params(qubo, args.p, args.gamma, args.beta, args.optimize, args.seed)
    compiled = compile_qaoa_pattern(qubo, gammas, betas)
    program = compiled.executable()
    engine = select_backend(program, args.backend)
    ok = check_pattern_determinism(
        compiled.pattern,
        max_branches=args.max_branches,
        seed=args.seed,
        backend=engine,
        compiled=program,
    )
    m = len(compiled.pattern.measured_nodes())
    print(f"problem        {name}")
    print(f"pattern        {compiled.num_nodes()} nodes, {m} measured, "
          f"peak live {program.max_live}")
    print(f"clifford       {'yes' if program.is_clifford else 'no'}")
    print(f"backend        {engine.name}")
    if args.max_branches and args.max_branches < (1 << m):
        # The budget bounds the sample; the stabilizer path additionally
        # skips unreachable branches and may substitute trajectory draws.
        print(f"branch budget  {args.max_branches} of {1 << m}")
    else:
        print(f"branches       all {1 << m}")
    print(f"deterministic  {'yes' if ok else 'NO'}")
    return 0 if ok else 1


def cmd_resources(args: argparse.Namespace) -> int:
    name, qubo, _ = parse_problem(args.problem)
    rows = resource_table([(name, qubo)], depths=args.depths)
    print(format_table(rows))
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    name, qubo, problem = parse_problem(args.problem)
    res = iterative_quantum_optimize(qubo.to_ising(), stop_at=args.stop_at)
    bits = res.bits()
    print(f"problem      {name}")
    print(f"rounds       {len(res.steps)}")
    print(f"assignment   {''.join(map(str, bits))}")
    print(f"cost         {qubo.cost(bits):.4f}")
    if isinstance(problem, MaxCut):
        print(f"cut          {problem.cut_value(bits):.0f} "
              f"(optimum {problem.max_cut_value():.0f})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze, format_contract_report, lint_tree

    failed = False
    ran = False

    if args.problem is not None or args.pattern_json is not None:
        ran = True
        if args.pattern_json is not None:
            from repro.mbqc.compile import compile_pattern
            from repro.mbqc.serialize import pattern_from_json

            with open(args.pattern_json, encoding="utf-8") as fh:
                pattern = pattern_from_json(fh.read())
            program = compile_pattern(pattern)
            name = args.pattern_json
        else:
            name, qubo, _ = parse_problem(args.problem)
            gammas, betas = _resolve_params(
                qubo, args.p, args.gamma, args.beta, args.optimize, args.seed
            )
            program = compile_qaoa_pattern(qubo, gammas, betas).executable()
        if args.noise:
            noise = NoiseModel(
                p_prep=args.noise, p_ent=args.noise, p_meas=args.noise
            )
            program = lower_noise(program, noise)
        report = analyze(program)
        print(f"lint           {name}")
        print(report.format(budget=args.budget))
        if not report.ok or (args.strict and report.warnings):
            failed = True
        try:
            engine = select_backend(
                program, prefer=args.backend, max_bytes=args.budget
            )
            print(f"backend        {engine.name} fits the budget")
        except PatternError as exc:
            print(f"backend        {args.backend}: {exc}")
            failed = True
        if args.fallback_chain:
            from repro.exec import FallbackPolicy, validate_fallback_chain

            policy = FallbackPolicy.parse(args.fallback_chain)
            validation = validate_fallback_chain(
                program, policy, args.budget
            )
            print(validation.format(args.budget))
            if not validation.ok:
                failed = True

    if args.fallback_chain and not (
        args.problem is not None or args.pattern_json is not None
    ):
        raise ValueError(
            "--fallback-chain pre-flights a chain against a compiled "
            "pattern; pass a problem spec or --pattern-json"
        )

    if args.contracts is not None:
        ran = True
        diags = lint_tree(args.contracts)
        print(f"contracts      {args.contracts}")
        print(format_contract_report(diags))
        if diags:
            failed = True

    if not ran:
        raise ValueError(
            "nothing to lint: pass a problem spec, --pattern-json, or "
            "--contracts [PATH]"
        )
    return 1 if failed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import JobServer, serve_socket, serve_stdin

    server = JobServer(
        cache_dir=args.cache_dir,
        workers=args.workers,
        max_batch_shots=args.max_batch_shots,
        coalesce=not args.no_coalesce,
        executor=args.executor,
    )
    try:
        if args.port is not None:
            import time

            tcp = serve_socket(server, host=args.host, port=args.port)
            host, port = tcp.server_address[:2]
            print(f"serving on {host}:{port}", file=sys.stderr)
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
            finally:
                tcp.shutdown()
            return 0
        failures = serve_stdin(server, sys.stdin, sys.stdout)
        server.drain(timeout=600)
        for diag in server.cache.stats.diagnostics():
            print(diag.format(), file=sys.stderr)
        return 1 if failures else 0
    finally:
        server.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Measurement-based QAOA (Stollenwerk & Hadfield, 2024) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(
        p: argparse.ArgumentParser, problem_optional: bool = False
    ) -> None:
        if problem_optional:
            p.add_argument("problem", nargs="?", default=None,
                           help="problem spec, e.g. ring:6 or regular:3,8 "
                           "(optional with --resume)")
        else:
            p.add_argument("problem",
                           help="problem spec, e.g. ring:6 or regular:3,8")
        p.add_argument("--p", type=int, default=1, help="QAOA depth")
        p.add_argument("--gamma", type=float, nargs="*", default=None)
        p.add_argument("--beta", type=float, nargs="*", default=None)
        p.add_argument("--optimize", action="store_true",
                       help="local-optimize parameters instead of grid search")
        p.add_argument("--seed", type=int, default=0)

    pc = sub.add_parser("compile", help="compile and summarize the MBQC protocol")
    add_common(pc)
    pc.add_argument("--schedule", choices=["eager", "graph-first"], default="eager")
    pc.set_defaults(func=cmd_compile)

    backend_kwargs = dict(
        choices=["auto", *list_backends()],
        default="auto",
        help="pattern-execution engine (auto dispatches Clifford patterns "
        "to the stabilizer tableau beyond dense reach and bounded-"
        "interaction-width non-Clifford patterns to the mps engine; "
        "density evolves the full density operator, integrating channels "
        "exactly)",
    )

    pr = sub.add_parser("run", help="compile, execute, and sample")
    add_common(pr, problem_optional=True)
    pr.add_argument("--shots", type=int, default=256)
    pr.add_argument("--backend", **backend_kwargs)
    pr.add_argument("--noise", type=float, default=0.0,
                    help="uniform per-operation error rate (depolarizing "
                    "prep/ent + readout flips, the E15 model)")
    pr.add_argument("--exact", action="store_true",
                    help="integrate noise channels exactly on the density "
                    "engine: <cost> is the true noisy expectation, no "
                    "sampling anywhere")
    pr.add_argument("--shards", type=int, default=1,
                    help="with --exact: fork the frontier integration "
                    "across this many supervised worker processes")
    pr.add_argument("--retries", type=int, default=2,
                    help="bounded retries for a failed shard or shot block "
                    "before escalating (re-split / in-process fallback)")
    pr.add_argument("--shard-timeout", type=float, default=None,
                    dest="shard_timeout", metavar="SECS",
                    help="per-shard wall-clock budget in seconds; an "
                    "overrun is retried (diagnostic R103)")
    pr.add_argument("--fallback", default=None, metavar="CHAIN",
                    help="backend degradation chain, e.g. "
                    "'mps->density->statevector': links that cannot serve "
                    "the pattern are routed past with an R105 diagnostic")
    pr.add_argument("--job-dir", default=None, dest="job_dir", metavar="DIR",
                    help="run the shots as a checkpointed job in DIR: each "
                    "completed shot block is persisted, and re-running the "
                    "same command resumes from the surviving blocks "
                    "bit-identically")
    pr.add_argument("--block-shots", type=int, default=1024,
                    dest="block_shots",
                    help="shots per checkpoint block (part of the job's "
                    "record-stream identity, like --seed)")
    pr.add_argument("--resume", default=None, metavar="JOBDIR",
                    help="finish the checkpointed job in JOBDIR using the "
                    "parameters persisted in its manifest (the problem "
                    "spec argument is then not needed)")
    pr.add_argument("--cache-dir", default=None, dest="cache_dir", metavar="DIR",
                    help="compile through the content-addressed pattern "
                    "cache rooted at DIR: repeat traffic for the same "
                    "pattern skips compilation (R106 diagnostics report "
                    "hit/miss counts)")
    pr.set_defaults(func=cmd_run)

    pd = sub.add_parser("verify", help="branch-exhaustive determinism check")
    add_common(pd)
    pd.add_argument("--max-branches", type=int, default=64, dest="max_branches",
                    help="sample at most this many outcome branches")
    pd.add_argument("--backend", **backend_kwargs)
    pd.set_defaults(func=cmd_verify)

    ps = sub.add_parser("resources", help="Section III.A resource table")
    ps.add_argument("problem")
    ps.add_argument("--depths", type=int, nargs="+", default=[1, 2, 4])
    ps.set_defaults(func=cmd_resources)

    pv = sub.add_parser("solve", help="iterative quantum optimization (Sec. V)")
    pv.add_argument("problem")
    pv.add_argument("--stop-at", type=int, default=3, dest="stop_at")
    pv.set_defaults(func=cmd_solve)

    pl = sub.add_parser(
        "lint",
        help="static IR verification, resource estimate, contract linter",
    )
    pl.add_argument("problem", nargs="?", default=None,
                    help="problem spec to compile and analyze (optional "
                    "when --pattern-json or --contracts is given)")
    pl.add_argument("--p", type=int, default=1, help="QAOA depth")
    pl.add_argument("--gamma", type=float, nargs="*", default=None)
    pl.add_argument("--beta", type=float, nargs="*", default=None)
    pl.add_argument("--optimize", action="store_true",
                    help="local-optimize parameters instead of grid search")
    pl.add_argument("--seed", type=int, default=0)
    pl.add_argument("--noise", type=float, default=0.0,
                    help="lower this uniform error rate into the channel IR "
                    "before analyzing (exercises the noise-IR checks)")
    pl.add_argument("--pattern-json", default=None, dest="pattern_json",
                    help="analyze a serialized pattern file instead of "
                    "compiling a problem")
    pl.add_argument("--budget", type=int, default=1 << 26,
                    help="byte budget for the shot-chunk row of the "
                    "resource report (default 64 MiB)")
    pl.add_argument("--backend", **backend_kwargs)
    pl.add_argument("--fallback-chain", default=None, dest="fallback_chain",
                    metavar="CHAIN",
                    help="pre-flight a backend degradation chain (e.g. "
                    "'mps->density->statevector') against the compiled "
                    "pattern: per-link support and byte-cost rows, a "
                    "cost-ordering check, and which link would serve "
                    "under --budget")
    pl.add_argument("--contracts", nargs="?", const="src", default=None,
                    metavar="PATH",
                    help="also run the seeded-stream contract linter over "
                    "PATH (default: src)")
    pl.add_argument("--strict", action="store_true",
                    help="treat warning-severity diagnostics as failures")
    pl.set_defaults(func=cmd_lint)

    pj = sub.add_parser(
        "serve",
        help="async job server: JSON jobs over stdin or a local socket, "
        "coalesced across a worker pool, streamed receipts",
    )
    pj.add_argument("--cache-dir", default=None, dest="cache_dir", metavar="DIR",
                    help="content-addressed compiled-pattern cache directory "
                    "(shared with `repro run --cache-dir`)")
    pj.add_argument("--workers", type=int, default=2,
                    help="worker pool size for block execution")
    pj.add_argument("--max-batch-shots", type=int, default=4096,
                    dest="max_batch_shots",
                    help="ceiling on one fused sample_batch call; queued "
                    "same-pattern blocks are coalesced up to this many shots")
    pj.add_argument("--no-coalesce", action="store_true", dest="no_coalesce",
                    help="run every block standalone (receipts are "
                    "bit-identical either way; this trades throughput for "
                    "per-job latency)")
    pj.add_argument("--executor", choices=["process", "thread", "inline"],
                    default="process",
                    help="worker pool kind (process = real parallelism; "
                    "inline = single-threaded, for debugging)")
    pj.add_argument("--port", type=int, default=None,
                    help="listen on a local TCP socket instead of stdin "
                    "(0 picks a free port, printed to stderr)")
    pj.add_argument("--host", default="127.0.0.1",
                    help="bind address for --port (default localhost only)")
    pj.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
