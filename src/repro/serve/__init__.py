"""The serving layer (``repro.serve``).

Compile-once / serve-many execution for the pattern engines: a
content-addressed compiled-pattern cache (:mod:`~repro.serve.cache`),
an async job server with a worker pool and per-block streaming
(:mod:`~repro.serve.server`), and backpressure-aware batching that
fuses queued jobs on the same compiled-pattern digest into one
``sample_batch`` call while keeping every job's records bit-identical
to its standalone seeded run (:mod:`~repro.serve.batching`).  Job and
receipt formats live in :mod:`~repro.serve.jobs`; the CLI entry point
is ``repro serve``.
"""

from repro.serve.batching import (
    BlockTask,
    MuxedGenerator,
    MuxScheduleError,
    pack_tasks,
    run_coalesced,
)
from repro.serve.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    PatternCache,
    get_cache,
    pattern_digest,
)
from repro.serve.jobs import JobResult, JobSpec, records_sha256
from repro.serve.server import (
    DEFAULT_MAX_BATCH_SHOTS,
    JobServer,
    request_jobs,
    serve_socket,
    serve_stdin,
)

__all__ = [
    "BlockTask",
    "MuxedGenerator",
    "MuxScheduleError",
    "pack_tasks",
    "run_coalesced",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "PatternCache",
    "get_cache",
    "pattern_digest",
    "JobResult",
    "JobSpec",
    "records_sha256",
    "DEFAULT_MAX_BATCH_SHOTS",
    "JobServer",
    "request_jobs",
    "serve_socket",
    "serve_stdin",
]
