"""Backpressure-aware batching: coalesce jobs into one ``sample_batch``.

The engines are fastest at large shot blocks (E22/E23), so the server
wants to fuse many small queued jobs targeting the same compiled-pattern
digest into one big ``sample_batch`` call.  The catch is determinism:
every job promises records bit-identical to its standalone seeded run.

:class:`MuxedGenerator` delivers that.  All four engines consume
randomness exclusively through whole-block vector draws whose *schedule*
(which draws happen, in which order) is a pure function of the compiled
program — never of sampled data or of the shot count — and per-shot
outcomes depend only on that shot's slice of each draw.  So a generator
that services each size-``N`` draw by concatenating the per-job
sub-generators' draws (``random(N) = concat(rng_j.random(n_j))``) hands
every job *exactly* the stream its standalone run would consume, and the
fused run's record rows demultiplex into bit-identical per-job records.

If an engine ever makes a draw the mux does not recognize (a scalar
draw, a wrong-sized vector, an unexpected distribution), the shim raises
:class:`MuxScheduleError` and :func:`run_coalesced` falls back to
running each task standalone — correctness never rides on the fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mbqc.backend import PatternBackend, SampleRun
from repro.mbqc.compile import CompiledPattern
from repro.utils.rng import ensure_rng


class MuxScheduleError(RuntimeError):
    """An engine made a draw the mux cannot split per-job (scalar draw or
    unexpected size) — the coalesced run must fall back to standalone."""


class MuxedGenerator(np.random.Generator):
    """A ``numpy.random.Generator`` that multiplexes N per-job generators.

    Every whole-block draw of the fused batch size is serviced by
    concatenating the corresponding draws from each part, so part ``j``
    consumes exactly the stream of its standalone run.  Only the draw
    forms the engines use (``random(size)`` and ``integers(low, size)``)
    are supported; anything else raises :class:`MuxScheduleError` rather
    than silently consuming the dummy bit generator.
    """

    def __init__(
        self, parts: Sequence[np.random.Generator], sizes: Sequence[int]
    ) -> None:
        if len(parts) != len(sizes) or not parts:
            raise ValueError("parts and sizes must be equal-length and non-empty")
        # The base Generator is never drawn from — every supported method
        # is overridden — but the C layer needs a bit generator to exist.
        super().__init__(np.random.PCG64(0))
        self._parts = list(parts)
        self._sizes = [int(n) for n in sizes]
        self._total = sum(self._sizes)

    # -- supported draws -----------------------------------------------------
    def _check_size(self, size, method: str) -> None:
        if size != self._total:
            raise MuxScheduleError(
                f"muxed {method} draw of size {size!r} (expected the fused "
                f"batch size {self._total}); the engine's draw schedule is "
                f"not whole-block — run tasks standalone"
            )

    def random(self, size=None, dtype=np.float64, out=None):  # type: ignore[override]
        if out is not None:
            raise MuxScheduleError("muxed random() does not support out=")
        self._check_size(size, "random")
        return np.concatenate(
            [p.random(n, dtype=dtype) for p, n in zip(self._parts, self._sizes)]
        )

    def integers(  # type: ignore[override]
        self, low, high=None, size=None, dtype=np.int64, endpoint=False
    ):
        self._check_size(size, "integers")
        return np.concatenate(
            [
                p.integers(low, high, size=n, dtype=dtype, endpoint=endpoint)
                for p, n in zip(self._parts, self._sizes)
            ]
        )

    # -- everything else is a schedule violation -----------------------------
    def _unsupported(self, method: str):
        raise MuxScheduleError(
            f"engine drew via Generator.{method}(), which the mux cannot "
            f"split per-job — run tasks standalone"
        )

    def standard_normal(self, *a, **k):  # type: ignore[override]
        self._unsupported("standard_normal")

    def normal(self, *a, **k):  # type: ignore[override]
        self._unsupported("normal")

    def uniform(self, *a, **k):  # type: ignore[override]
        self._unsupported("uniform")

    def choice(self, *a, **k):  # type: ignore[override]
        self._unsupported("choice")

    def shuffle(self, *a, **k):  # type: ignore[override]
        self._unsupported("shuffle")

    def permutation(self, *a, **k):  # type: ignore[override]
        self._unsupported("permutation")


@dataclass(frozen=True)
class BlockTask:
    """One shot block of one job, ready to fuse with its digest-mates.

    ``seed`` is the block's child :class:`numpy.random.SeedSequence` from
    the job's ``spawn_seeds`` tree — the same seed the block would get in
    :func:`repro.exec.checkpoint.run_checkpointed`, so serving and
    checkpointing produce interchangeable record streams."""

    job_id: str
    block_index: int
    lo: int
    hi: int
    seed: np.random.SeedSequence

    @property
    def shots(self) -> int:
        return self.hi - self.lo


def run_coalesced(
    compiled: CompiledPattern,
    engine: PatternBackend,
    tasks: Sequence[BlockTask],
    *,
    sample_kwargs: Optional[dict] = None,
) -> List[np.ndarray]:
    """Run ``tasks`` (all on ``compiled``) as one fused ``sample_batch``
    and demultiplex per-task records, falling back to standalone runs on
    :class:`MuxScheduleError`.  Returns one ``(shots, n_measured)`` int8
    array per task, bit-identical to each task's standalone run either
    way."""
    kwargs = dict(sample_kwargs or {})
    if not tasks:
        return []
    if len(tasks) == 1:
        run = engine.sample_batch(
            compiled, tasks[0].shots, ensure_rng(tasks[0].seed), **kwargs
        )
        return [np.ascontiguousarray(run.outcomes, dtype=np.int8)]
    sizes = [t.shots for t in tasks]
    rng = MuxedGenerator([ensure_rng(t.seed) for t in tasks], sizes)
    try:
        fused: SampleRun = engine.sample_batch(compiled, sum(sizes), rng, **kwargs)
    except MuxScheduleError:
        return [
            np.ascontiguousarray(
                engine.sample_batch(
                    compiled, t.shots, ensure_rng(t.seed), **kwargs
                ).outcomes,
                dtype=np.int8,
            )
            for t in tasks
        ]
    outcomes = np.ascontiguousarray(fused.outcomes, dtype=np.int8)
    pieces: List[np.ndarray] = []
    off = 0
    for n in sizes:
        pieces.append(outcomes[off:off + n].copy())
        off += n
    return pieces


def pack_tasks(
    tasks: Sequence[BlockTask], max_batch_shots: int
) -> List[Tuple[BlockTask, ...]]:
    """Greedily pack same-digest tasks into fused batches of at most
    ``max_batch_shots`` (a single oversized task still forms its own
    batch — blocks are never split further)."""
    batches: List[Tuple[BlockTask, ...]] = []
    current: List[BlockTask] = []
    current_shots = 0
    for task in tasks:
        if current and current_shots + task.shots > max_batch_shots:
            batches.append(tuple(current))
            current, current_shots = [], 0
        current.append(task)
        current_shots += task.shots
    if current:
        batches.append(tuple(current))
    return batches
