"""Job specifications and results for the serving layer.

A job arrives as one JSON object (one line over the socket / stdin):

.. code-block:: json

    {"id": "j1", "kind": "run", "problem": "ring:8", "p": 1,
     "gammas": [0.4], "betas": [0.7], "noise": 0.01,
     "shots": 512, "seed": 7, "block_shots": 256, "backend": "auto"}

``kind`` is one of:

* ``"run"`` — compile a QAOA pattern for ``problem`` (a CLI-style
  ``kind:args`` spec) at explicit ``gammas``/``betas`` and sample
  ``shots`` records.
* ``"sample"`` — like ``run``, but the program arrives directly as a
  serialized pattern dict (``"pattern"``, the
  :func:`~repro.mbqc.serialize.pattern_to_dict` form).
* ``"verify"`` — branch-exhaustive determinism check of the program
  (no sampling; returns the verdict in the ``done`` event).

``noise`` is a single float (the CLI's uniform
``p_prep = p_ent = p_meas`` bag), a ``{"p_prep":…, "p_ent":…,
"p_meas":…}`` dict, or a full serialized channel model
(:func:`~repro.mbqc.serialize.noise_model_from_dict` form).

Sampling jobs follow the checkpoint contract exactly: ``shots`` is split
by :func:`repro.exec.checkpoint.plan_blocks`, block ``i`` runs under the
``i``-th child of ``SeedSequence(seed)`` — so a job's final
``records_sha256`` receipt equals the digest of the same standalone
:func:`~repro.exec.checkpoint.run_checkpointed` or ``sample_batch``
run, whether or not the server coalesced its blocks with other jobs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mbqc.channels import ChannelNoiseModel
from repro.mbqc.noise import NoiseModel
from repro.mbqc.pattern import Pattern, PatternError
from repro.mbqc.serialize import noise_model_from_dict, pattern_from_dict

JOB_KINDS = ("run", "sample", "verify")

#: Default shots per serving block — smaller than the checkpoint default
#: so several queued jobs can interleave into one fused batch.
DEFAULT_BLOCK_SHOTS = 256


@dataclass(frozen=True)
class JobSpec:
    """One validated job request."""

    job_id: str
    kind: str
    shots: int
    seed: int
    block_shots: int
    backend: str = "auto"
    problem: Optional[str] = None
    gammas: Tuple[float, ...] = ()
    betas: Tuple[float, ...] = ()
    pattern_data: Optional[dict] = None
    noise: Optional[object] = None

    @classmethod
    def from_dict(cls, data: dict, *, default_id: str) -> "JobSpec":
        """Validate one JSON job object into a spec; raises
        :class:`~repro.mbqc.pattern.PatternError` with an actionable
        message on anything malformed."""
        if not isinstance(data, dict):
            raise PatternError(f"job must be a JSON object, got {type(data).__name__}")
        kind = data.get("kind", "run")
        if kind not in JOB_KINDS:
            raise PatternError(
                f"unknown job kind {kind!r}; expected one of {', '.join(JOB_KINDS)}"
            )
        job_id = str(data.get("id", default_id))
        shots = int(data.get("shots", 0))
        if kind != "verify" and shots < 1:
            raise PatternError(f"job {job_id!r} needs shots >= 1, got {shots}")
        seed = data.get("seed")
        if seed is None:
            # Fresh-but-recorded entropy, like the checkpoint manifest:
            # the receipt is only meaningful with a concrete seed.
            seed = int(np.random.SeedSequence().entropy) % (2**63)
        block_shots = int(data.get("block_shots", DEFAULT_BLOCK_SHOTS))
        if block_shots < 1:
            raise PatternError(
                f"job {job_id!r} needs block_shots >= 1, got {block_shots}"
            )
        pattern_data = data.get("pattern")
        problem = data.get("problem")
        if kind == "run" and not problem:
            raise PatternError(f"run job {job_id!r} needs a problem spec")
        if kind == "sample" and pattern_data is None:
            raise PatternError(f"sample job {job_id!r} needs a pattern dict")
        if kind == "verify" and pattern_data is None and not problem:
            raise PatternError(f"verify job {job_id!r} needs a pattern or problem")
        gammas = tuple(float(g) for g in data.get("gammas", ()) or ())
        betas = tuple(float(b) for b in data.get("betas", ()) or ())
        if problem and kind != "verify" and (not gammas or len(gammas) != len(betas)):
            raise PatternError(
                f"job {job_id!r} needs equal-length non-empty gammas/betas "
                f"(got {len(gammas)}/{len(betas)}); the server never runs "
                f"the parameter optimizer"
            )
        return cls(
            job_id=job_id,
            kind=kind,
            shots=shots,
            seed=int(seed),
            block_shots=block_shots,
            backend=str(data.get("backend", "auto")),
            problem=problem,
            gammas=gammas,
            betas=betas,
            pattern_data=pattern_data,
            noise=parse_noise(data.get("noise"), job_id=job_id),
        )

    def build_pattern(self) -> Pattern:
        """The measurement pattern this job executes (built fresh — the
        cache decides whether compilation is needed)."""
        if self.pattern_data is not None:
            return pattern_from_dict(self.pattern_data)
        # Deferred: the CLI sits above the serving layer in the module
        # graph; importing it lazily keeps `repro.serve` importable alone.
        from repro.cli import parse_problem
        from repro.core.compiler import compile_qaoa_pattern

        _, qubo, _ = parse_problem(self.problem or "")
        gammas = self.gammas or (0.4,)
        betas = self.betas or (0.7,)
        return compile_qaoa_pattern(qubo, list(gammas), list(betas)).pattern


def parse_noise(raw: object, *, job_id: str) -> Optional[object]:
    """Coerce a job's ``noise`` field to a noise-model object (or None)."""
    if raw is None:
        return None
    if isinstance(raw, (int, float)):
        p = float(raw)
        if p == 0.0:
            return None
        return NoiseModel(p_prep=p, p_ent=p, p_meas=p)
    if isinstance(raw, dict):
        if "version" in raw:
            return noise_model_from_dict(raw)
        return NoiseModel(
            p_prep=float(raw.get("p_prep", 0.0)),
            p_ent=float(raw.get("p_ent", 0.0)),
            p_meas=float(raw.get("p_meas", 0.0)),
        )
    if isinstance(raw, (NoiseModel, ChannelNoiseModel)):
        return raw
    raise PatternError(
        f"job {job_id!r} has an uninterpretable noise field "
        f"({type(raw).__name__}); pass a float, a p_prep/p_ent/p_meas "
        f"dict, or a serialized channel model"
    )


def records_sha256(outcomes: np.ndarray) -> str:
    """SHA-256 of an outcome-record block — byte-compatible with
    :func:`repro.exec.checkpoint.records_digest`, so serve receipts and
    checkpoint receipts compare directly."""
    return hashlib.sha256(
        np.ascontiguousarray(outcomes, dtype=np.int8).tobytes()
    ).hexdigest()


@dataclass
class JobState:
    """Mutable per-job progress the server tracks until the receipt."""

    spec: JobSpec
    digest: str
    backend: str
    cache_status: str  # "memory-hit" | "disk-hit" | "miss"
    n_blocks: int
    pieces: List[Optional[np.ndarray]] = field(default_factory=list)
    done_blocks: int = 0
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.pieces:
            self.pieces = [None] * self.n_blocks

    @property
    def complete(self) -> bool:
        return self.error is not None or self.done_blocks >= self.n_blocks

    def merged_outcomes(self) -> np.ndarray:
        missing = [i for i, piece in enumerate(self.pieces) if piece is None]
        if missing:
            raise PatternError(
                f"job {self.spec.job_id!r} is missing blocks {missing}"
            )
        if not self.pieces:
            return np.zeros((0, 0), dtype=np.int8)
        return np.concatenate(self.pieces, axis=0)


@dataclass(frozen=True)
class JobResult:
    """The final, receipt-bearing outcome of one job."""

    job_id: str
    kind: str
    records_sha256: Optional[str]
    shots: int
    backend: str
    digest: str
    cache_status: str
    deterministic: Optional[bool] = None
    outcomes: Optional[np.ndarray] = None

    def as_event(self) -> Dict[str, object]:
        event: Dict[str, object] = {
            "event": "done",
            "job": self.job_id,
            "kind": self.kind,
            "shots": self.shots,
            "backend": self.backend,
            "digest": self.digest,
            "cache": self.cache_status,
        }
        if self.records_sha256 is not None:
            event["records_sha256"] = self.records_sha256
        if self.deterministic is not None:
            event["deterministic"] = self.deterministic
        return event
