"""The async job server: queueing, worker pool, coalescing, frontends.

:class:`JobServer` accepts run/verify/sample jobs (see
:mod:`repro.serve.jobs`), compiles each job's program through the
content-addressed :class:`~repro.serve.cache.PatternCache`, splits
sampling jobs into seeded shot blocks with the checkpoint machinery
(:func:`~repro.exec.checkpoint.plan_blocks` +
``SeedSequence(seed).spawn``), and dispatches blocks to a worker pool.
A scheduler thread drains the queue, fuses queued blocks that share a
compiled-pattern digest into one ``sample_batch`` call
(:func:`~repro.serve.batching.run_coalesced` — per-job records stay
bit-identical to standalone runs), and enforces backpressure: while all
workers are busy the queue keeps accumulating, so the next drain fuses
*more* blocks per call — batch size adapts to load with no tuning.

Events stream per block as they finish, ending with a ``done`` event
carrying the job's ``records_sha256`` receipt (byte-compatible with
:func:`repro.exec.checkpoint.records_digest`).  Two frontends wrap the
server: :func:`serve_stdin` (one JSON job per stdin line, JSON events on
stdout — what ``repro serve`` uses by default) and :func:`serve_socket`
(the same line protocol over a local TCP socket, one client per
connection thread).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from queue import Empty, Queue
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec.checkpoint import plan_blocks
from repro.mbqc.backend import get_backend, select_backend
from repro.mbqc.compile import CompiledPattern
from repro.mbqc.pattern import PatternError
from repro.serve.batching import BlockTask, pack_tasks, run_coalesced
from repro.serve.cache import PatternCache
from repro.serve.jobs import (
    JobResult,
    JobSpec,
    JobState,
    records_sha256,
)
from repro.utils.rng import spawn_seeds

#: Default ceiling on one fused batch (shots); oversized single blocks
#: still run alone.
DEFAULT_MAX_BATCH_SHOTS = 4096


# -- worker-side entry points (top-level: the process pool pickles them) -----


def _execute_batch(
    compiled: CompiledPattern,
    backend_name: str,
    sizes: Sequence[int],
    seeds: Sequence[np.random.SeedSequence],
) -> List[np.ndarray]:
    engine = get_backend(backend_name)
    tasks = [
        BlockTask(job_id="", block_index=i, lo=0, hi=n, seed=seed)
        for i, (n, seed) in enumerate(zip(sizes, seeds))
    ]
    return run_coalesced(compiled, engine, tasks)


def _execute_verify(
    compiled: CompiledPattern,
    pattern_data: Optional[dict],
    problem: Optional[str],
    gammas: Sequence[float],
    betas: Sequence[float],
    backend_name: str,
    max_branches: Optional[int],
    seed: int,
) -> bool:
    from repro.core.verify import check_pattern_determinism

    spec = JobSpec(
        job_id="verify",
        kind="verify",
        shots=0,
        seed=seed,
        block_shots=1,
        problem=problem,
        gammas=tuple(gammas),
        betas=tuple(betas),
        pattern_data=pattern_data,
    )
    pattern = spec.build_pattern()
    return check_pattern_determinism(
        pattern,
        max_branches=max_branches,
        seed=seed,
        backend=get_backend(backend_name),
        compiled=compiled,
    )


@dataclass(frozen=True)
class _PendingBlock:
    """One queued block plus its fusion key (digest, engine)."""

    task: BlockTask
    digest: str
    backend: str


class JobServer:
    """Queue, cache, coalesce, execute, stream.

    ``executor`` selects the worker pool: ``"process"`` (the default —
    real parallelism, compiled patterns are pickled per dispatch),
    ``"thread"`` (cheaper dispatch, numpy releases the GIL for the heavy
    kernels), or ``"inline"`` (run batches on the scheduler thread —
    deterministic scheduling for tests).  ``coalesce=False`` disables
    fusion (every block runs standalone) without changing any receipt —
    bit-identity between the two modes is the serving layer's core
    contract.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[str] = None,
        workers: int = 2,
        max_batch_shots: int = DEFAULT_MAX_BATCH_SHOTS,
        coalesce: bool = True,
        executor: str = "process",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_batch_shots < 1:
            raise ValueError(
                f"max_batch_shots must be positive, got {max_batch_shots}"
            )
        self.cache = PatternCache(cache_dir)
        self.coalesce = coalesce
        self.max_batch_shots = int(max_batch_shots)
        self._workers = int(workers)
        self._executor_kind = executor
        self._pool: Optional[Executor] = None
        self._max_inflight = self._workers * 2
        self._inflight = 0
        self._queue: deque = deque()
        self._jobs: Dict[str, JobState] = {}
        self._results: Dict[str, JobResult] = {}
        self._compiled: Dict[str, CompiledPattern] = {}
        self._subscribers: List[Queue] = []
        # Reentrant: _finish_batch holds the lock while emitting events.
        self._cond = threading.Condition(threading.RLock())
        self._closed = False
        self._paused = False
        self._job_counter = 0
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="repro-serve-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- executor ------------------------------------------------------------
    def _ensure_pool(self) -> Optional[Executor]:
        if self._executor_kind == "inline":
            return None
        if self._pool is None:
            if self._executor_kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self._workers)
            elif self._executor_kind == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
            else:
                raise ValueError(
                    f"unknown executor kind {self._executor_kind!r}; "
                    f"expected process, thread, or inline"
                )
        return self._pool

    # -- event plumbing ------------------------------------------------------
    def subscribe(self) -> Queue:
        """A queue receiving every event the server emits from now on."""
        q: Queue = Queue()
        with self._cond:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: Queue) -> None:
        with self._cond:
            if q in self._subscribers:
                self._subscribers.remove(q)

    def _emit(self, event: dict) -> None:
        with self._cond:
            subscribers = list(self._subscribers)
        for q in subscribers:
            q.put(event)

    # -- submission ----------------------------------------------------------
    def submit(self, data: dict) -> str:
        """Validate and enqueue one JSON job object; returns the job id.
        Raises :class:`~repro.mbqc.pattern.PatternError` on a malformed
        spec (frontends catch and emit an ``error`` event instead)."""
        with self._cond:
            self._job_counter += 1
            default_id = f"job-{self._job_counter}"
        return self.submit_spec(JobSpec.from_dict(data, default_id=default_id))

    def submit_spec(self, spec: JobSpec) -> str:
        if self._closed:
            raise PatternError("the job server is closed")
        with self._cond:
            if spec.job_id in self._jobs:
                raise PatternError(f"duplicate job id {spec.job_id!r}")

        pattern = spec.build_pattern()
        # Verify inspects the noiseless program; sampling jobs bake the
        # lowered noise IR into the cached artifact (and its digest).
        noise = None if spec.kind == "verify" else spec.noise
        compiled, digest, cache_status = self.cache.get_or_compile_status(
            pattern, noise=noise
        )

        backend_name = (
            select_backend(compiled).name
            if spec.backend == "auto"
            else get_backend(spec.backend).name
        )

        if spec.kind == "verify":
            state = JobState(
                spec=spec,
                digest=digest,
                backend=backend_name,
                cache_status=cache_status,
                n_blocks=0,
            )
            with self._cond:
                self._jobs[spec.job_id] = state
                self._compiled[digest] = compiled
            self._emit(
                {
                    "event": "accepted",
                    "job": spec.job_id,
                    "kind": spec.kind,
                    "digest": digest,
                    "cache": cache_status,
                    "blocks": 0,
                }
            )
            self._dispatch_verify(state, compiled)
            return spec.job_id

        plans = plan_blocks(spec.shots, spec.block_shots)
        seeds = spawn_seeds(np.random.SeedSequence(spec.seed), len(plans))
        state = JobState(
            spec=spec,
            digest=digest,
            backend=backend_name,
            cache_status=cache_status,
            n_blocks=len(plans),
        )
        with self._cond:
            self._jobs[spec.job_id] = state
            self._compiled[digest] = compiled
            for plan in plans:
                self._queue.append(
                    _PendingBlock(
                        task=BlockTask(
                            job_id=spec.job_id,
                            block_index=plan.index,
                            lo=plan.lo,
                            hi=plan.hi,
                            seed=seeds[plan.index],
                        ),
                        digest=digest,
                        backend=backend_name,
                    )
                )
            self._cond.notify_all()
        self._emit(
            {
                "event": "accepted",
                "job": spec.job_id,
                "kind": spec.kind,
                "digest": digest,
                "cache": cache_status,
                "blocks": len(plans),
            }
        )
        return spec.job_id

    # -- scheduling ----------------------------------------------------------
    def pause(self) -> None:
        """Hold the scheduler: submitted blocks accumulate in the queue
        (so :meth:`resume` coalesces them together) — the deterministic
        way to exercise fusion in tests and benchmarks."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def _schedule_loop(self) -> None:
        while True:
            with self._cond:
                while (not self._queue or self._paused) and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                pending = list(self._queue)
                self._queue.clear()

            groups: "Dict[Tuple[str, str], List[BlockTask]]" = {}
            order: List[Tuple[str, str]] = []
            for item in pending:
                key = (item.digest, item.backend)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(item.task)

            for key in order:
                digest, backend_name = key
                tasks = groups[key]
                if self.coalesce:
                    batches = pack_tasks(tasks, self.max_batch_shots)
                else:
                    batches = [(t,) for t in tasks]
                for batch in batches:
                    self._dispatch_batch(digest, backend_name, batch)

    def _dispatch_batch(
        self, digest: str, backend_name: str, batch: Tuple[BlockTask, ...]
    ) -> None:
        compiled = self._compiled[digest]
        sizes = [t.shots for t in batch]
        seeds = [t.seed for t in batch]
        pool = self._ensure_pool()
        if pool is None:
            try:
                pieces = _execute_batch(compiled, backend_name, sizes, seeds)
            except Exception as exc:  # noqa: BLE001 - routed to job errors
                self._finish_batch(batch, None, error=str(exc))
                return
            self._finish_batch(batch, pieces)
            return
        with self._cond:
            while self._inflight >= self._max_inflight and not self._closed:
                self._cond.wait()
            if self._closed:
                return
            self._inflight += 1
        future = pool.submit(_execute_batch, compiled, backend_name, sizes, seeds)

        def _done(fut) -> None:
            with self._cond:
                self._inflight -= 1
                self._cond.notify_all()
            try:
                pieces = fut.result()
            except Exception as exc:  # noqa: BLE001 - routed to job errors
                self._finish_batch(batch, None, error=str(exc))
                return
            self._finish_batch(batch, pieces)

        future.add_done_callback(_done)

    def _dispatch_verify(self, state: JobState, compiled: CompiledPattern) -> None:
        spec = state.spec
        args = (
            compiled,
            spec.pattern_data,
            spec.problem,
            spec.gammas,
            spec.betas,
            state.backend,
            None,
            spec.seed,
        )
        pool = self._ensure_pool()

        def _complete(ok: Optional[bool], error: Optional[str]) -> None:
            if error is not None:
                state.error = error
                self._emit({"event": "error", "job": spec.job_id, "error": error})
                with self._cond:
                    self._cond.notify_all()
                return
            result = JobResult(
                job_id=spec.job_id,
                kind=spec.kind,
                records_sha256=None,
                shots=0,
                backend=state.backend,
                digest=state.digest,
                cache_status=state.cache_status,
                deterministic=ok,
            )
            with self._cond:
                self._results[spec.job_id] = result
                self._cond.notify_all()
            self._emit(result.as_event())

        if pool is None:
            try:
                _complete(_execute_verify(*args), None)
            except Exception as exc:  # noqa: BLE001
                _complete(None, str(exc))
            return
        future = pool.submit(_execute_verify, *args)

        def _done(fut) -> None:
            try:
                _complete(fut.result(), None)
            except Exception as exc:  # noqa: BLE001
                _complete(None, str(exc))

        future.add_done_callback(_done)

    def _finish_batch(
        self,
        batch: Tuple[BlockTask, ...],
        pieces: Optional[List[np.ndarray]],
        error: Optional[str] = None,
    ) -> None:
        batch_shots = sum(t.shots for t in batch)
        with self._cond:
            for i, task in enumerate(batch):
                state = self._jobs[task.job_id]
                if error is not None:
                    if state.error is None:
                        state.error = error
                        self._emit(
                            {"event": "error", "job": task.job_id, "error": error}
                        )
                    continue
                assert pieces is not None
                piece = pieces[i]
                state.pieces[task.block_index] = piece
                state.done_blocks += 1
                self._emit(
                    {
                        "event": "block",
                        "job": task.job_id,
                        "index": task.block_index,
                        "lo": task.lo,
                        "hi": task.hi,
                        "sha256": records_sha256(piece),
                        "coalesced": len(batch) > 1,
                        "batch_shots": batch_shots,
                    }
                )
                if state.done_blocks >= state.n_blocks:
                    merged = state.merged_outcomes()
                    result = JobResult(
                        job_id=task.job_id,
                        kind=state.spec.kind,
                        records_sha256=records_sha256(merged),
                        shots=state.spec.shots,
                        backend=state.backend,
                        digest=state.digest,
                        cache_status=state.cache_status,
                        outcomes=merged,
                    )
                    self._results[task.job_id] = result
                    self._emit(result.as_event())
            self._cond.notify_all()

    # -- completion / lifecycle ----------------------------------------------
    def result(self, job_id: str, timeout: Optional[float] = None) -> JobResult:
        """Block until ``job_id`` finishes; raises on job error/timeout."""
        with self._cond:
            deadline = time.monotonic() + timeout if timeout is not None else None
            while True:
                if job_id in self._results:
                    return self._results[job_id]
                state = self._jobs.get(job_id)
                if state is None:
                    raise PatternError(f"unknown job id {job_id!r}")
                if state.error is not None:
                    raise PatternError(
                        f"job {job_id!r} failed: {state.error}"
                    )
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"job {job_id!r} did not finish in {timeout}s"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted job has a result or an error."""
        with self._cond:
            deadline = time.monotonic() + timeout if timeout is not None else None
            while True:
                outstanding = [
                    jid
                    for jid, state in self._jobs.items()
                    if jid not in self._results and state.error is None
                ]
                if not outstanding:
                    return
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"jobs still outstanding: {outstanding}"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def close(self) -> None:
        """Stop the scheduler (after the queue drains) and the pool."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._scheduler.join(timeout=30)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- frontends ----------------------------------------------------------------


def serve_stdin(
    server: JobServer, lines: Iterable[str], out: IO[str]
) -> int:
    """The ``repro serve`` stdin frontend: one JSON job per input line,
    JSON events streamed to ``out``, returns the number of failed jobs."""
    sub = server.subscribe()
    job_ids: List[str] = []
    failures = 0
    try:
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                failures += 1
                out.write(
                    json.dumps({"event": "error", "error": f"bad JSON: {exc}"})
                    + "\n"
                )
                continue
            try:
                job_ids.append(server.submit(data))
            except (PatternError, ValueError) as exc:
                failures += 1
                out.write(
                    json.dumps(
                        {
                            "event": "error",
                            "job": str(data.get("id", "?")),
                            "error": str(exc),
                        }
                    )
                    + "\n"
                )
        done: set = set()
        while len(done) < len(job_ids):
            event = sub.get()
            if event.get("job") not in job_ids:
                continue
            out.write(json.dumps(event) + "\n")
            out.flush()
            if event.get("event") in ("done", "error"):
                done.add(event["job"])
                if event.get("event") == "error":
                    failures += 1
    finally:
        server.unsubscribe(sub)
    return failures


class _ServeHandler(socketserver.StreamRequestHandler):
    """One client connection: JSON job lines in, event lines out.

    The client half-closing its write side (or sending an empty line)
    marks the end of submissions; the handler streams this connection's
    events until all its jobs finish."""

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        server: JobServer = self.server.job_server  # type: ignore[attr-defined]
        sub = server.subscribe()
        job_ids: List[str] = []
        try:
            for raw in self.rfile:
                line = raw.decode().strip()
                if not line:
                    break
                try:
                    job_ids.append(server.submit(json.loads(line)))
                except (PatternError, ValueError, json.JSONDecodeError) as exc:
                    self._send({"event": "error", "error": str(exc)})
            done: set = set()
            while len(done) < len(job_ids):
                try:
                    event = sub.get(timeout=600)
                except Empty:
                    self._send({"event": "error", "error": "server idle timeout"})
                    return
                if event.get("job") not in job_ids:
                    continue
                self._send(event)
                if event.get("event") in ("done", "error"):
                    done.add(event["job"])
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            server.unsubscribe(sub)

    def _send(self, event: dict) -> None:
        self.wfile.write(json.dumps(event).encode() + b"\n")
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_socket(
    server: JobServer, host: str = "127.0.0.1", port: int = 0
) -> "_ThreadingTCPServer":
    """Start the TCP frontend (a thread per connection) and return the
    listening ``socketserver`` (its ``server_address`` carries the bound
    port; call ``.shutdown()`` to stop)."""
    tcp = _ThreadingTCPServer((host, port), _ServeHandler)
    tcp.job_server = server  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=tcp.serve_forever, name="repro-serve-tcp", daemon=True
    )
    thread.start()
    return tcp


def request_jobs(
    host: str, port: int, jobs: Sequence[dict], timeout: float = 300.0
) -> List[dict]:
    """A minimal client for the socket frontend: submit ``jobs``, collect
    events until every job is done, return the events in arrival order."""
    events: List[dict] = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        payload = b"".join(json.dumps(j).encode() + b"\n" for j in jobs) + b"\n"
        conn.sendall(payload)
        buf = b""
        done = 0
        while done < len(jobs):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if not line.strip():
                    continue
                event = json.loads(line.decode())
                events.append(event)
                if event.get("event") in ("done", "error"):
                    done += 1
    return events
