"""Content-addressed compiled-pattern cache.

The serving layer's compile-once story: a :class:`PatternCache` maps the
SHA-256 of *what is being compiled* — the canonical serialized pattern,
the lowered noise IR, and the compile options — to the pickled
:class:`~repro.mbqc.compile.CompiledPattern`.  Repeat traffic (the same
pattern + noise arriving again, from this process or any other) skips
compilation entirely.

Two tiers:

* an in-process memory tier (bounded FIFO of live ``CompiledPattern``
  objects keyed by digest — they are frozen, so sharing is safe), and
* a disk tier under ``cache_dir/objects/<d[:2]>/<digest>.cpc`` with the
  same discipline as :mod:`repro.exec.checkpoint` block files: a
  one-line JSON header (format version, digest, payload SHA-256 and
  size) followed by the pickle payload, published with
  :func:`repro.exec.checkpoint.atomic_write_bytes` so concurrent
  writers and crashes can never tear an entry.

A poisoned entry (truncated, bit-flipped, version-skewed, or carrying
the wrong digest) fails validation on load and is treated as a miss —
the caller recompiles and the re-store heals the file.  Every cache
event increments :class:`CacheStats`, whose :meth:`CacheStats.diagnostics`
rows carry the stable code R106 (see
:func:`repro.analysis.resources.cache_diagnostics`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exec.checkpoint import atomic_write_bytes
from repro.mbqc.channels import as_channel_model
from repro.mbqc.compile import CompiledPattern, compile_pattern, lower_noise
from repro.mbqc.pattern import Pattern
from repro.mbqc.serialize import (
    canonical_json,
    noise_model_to_dict,
    pattern_to_dict,
)

#: On-disk cache entry format version (header field, checked on load).
CACHE_FORMAT_VERSION = 1

#: Default bound on the in-process memory tier (entries, FIFO eviction).
DEFAULT_MEMORY_ENTRIES = 256

_OBJECTS_DIR = "objects"
_ENTRY_SUFFIX = ".cpc"

# Serialization memos for the digest hot path.  Keys are *values* — the
# pattern's (immutable) command tuple and node lists, or the noise object
# itself when hashable — so equal keys imply equal serializations and the
# memo can never change a digest, only skip recomputing it.  Serving
# repeat traffic hits pattern_digest once per request; without the memo
# the canonical-JSON round trip dominates a memory-tier cache hit.
_JSON_MEMO_ENTRIES = 64
_PATTERN_JSON_MEMO: "OrderedDict[tuple, str]" = OrderedDict()
_NOISE_JSON_MEMO: "OrderedDict[object, str]" = OrderedDict()
_JSON_MEMO_LOCK = threading.Lock()


def _memo_get(memo: "OrderedDict", key: object) -> Optional[str]:
    with _JSON_MEMO_LOCK:
        return memo.get(key)


def _memo_put(memo: "OrderedDict", key: object, text: str) -> None:
    with _JSON_MEMO_LOCK:
        memo[key] = text
        while len(memo) > _JSON_MEMO_ENTRIES:
            memo.popitem(last=False)


def _canonical_pattern_json(pattern: Pattern) -> str:
    key = (
        tuple(pattern.commands),
        tuple(pattern.input_nodes),
        tuple(pattern.output_nodes),
    )
    cached = _memo_get(_PATTERN_JSON_MEMO, key)
    if cached is not None:
        return cached
    text = canonical_json(pattern_to_dict(pattern))
    _memo_put(_PATTERN_JSON_MEMO, key, text)
    return text


def _canonical_noise_json(noise: object) -> str:
    if noise is None:
        return "null"
    try:
        hash(noise)
    except TypeError:
        key = None  # unhashable model: serialize every time
    else:
        key = noise
        cached = _memo_get(_NOISE_JSON_MEMO, key)
        if cached is not None:
            return cached
    model = as_channel_model(noise)
    text = (
        canonical_json(noise_model_to_dict(model)) if model is not None else "null"
    )
    if key is not None:
        _memo_put(_NOISE_JSON_MEMO, key, text)
    return text


def pattern_digest(
    pattern: Pattern,
    noise: Optional[object] = None,
    options: Optional[dict] = None,
) -> str:
    """The content address of ``compile_pattern(pattern) + lower_noise``.

    SHA-256 over NUL-separated canonical JSON of the pattern, the noise
    model (coerced through :func:`~repro.mbqc.channels.as_channel_model`;
    ``null`` when absent), and the compile options — so the digest is a
    pure function of the compilation *inputs*, stable across processes,
    and independent of dict ordering or whitespace.
    """
    parts = (
        f"cache-v{CACHE_FORMAT_VERSION}",
        _canonical_pattern_json(pattern),
        _canonical_noise_json(noise),
        canonical_json(dict(options or {})),
    )
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    """Counters for one cache's lifetime, surfaced as R106 diagnostics."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    poisoned: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "poisoned": self.poisoned,
        }

    def diagnostics(self):
        """R106 rows for this cache — see
        :func:`repro.analysis.resources.cache_diagnostics`."""
        from repro.analysis.resources import cache_diagnostics

        return cache_diagnostics(self)


class PatternCache:
    """Two-tier content-addressed store of compiled patterns.

    ``cache_dir=None`` disables the disk tier (memory-only memo);
    ``memory_entries=0`` disables the memory tier.  Thread-safe: the
    memory tier is lock-guarded, the disk tier relies on atomic
    publication, so any number of threads/processes may share one
    ``cache_dir``.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, CompiledPattern]" = OrderedDict()
        self._memory_entries = int(memory_entries)
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------------
    def entry_path(self, digest: str) -> str:
        if self.cache_dir is None:
            raise ValueError("this cache has no disk tier (cache_dir=None)")
        return os.path.join(
            self.cache_dir, _OBJECTS_DIR, digest[:2], digest + _ENTRY_SUFFIX
        )

    # -- the compile-through API --------------------------------------------
    def get_or_compile(
        self,
        pattern: Pattern,
        *,
        noise: Optional[object] = None,
        validate: bool = True,
        verify_ir: bool = False,
    ) -> CompiledPattern:
        """The compiled (and noise-lowered) form of ``pattern``, from the
        memory tier, the disk tier, or a fresh compile — in that order.
        A fresh compile is stored to both tiers, so the *next* caller
        anywhere on the machine gets the hit."""
        return self.get_or_compile_status(
            pattern, noise=noise, validate=validate, verify_ir=verify_ir
        )[0]

    def get_or_compile_status(
        self,
        pattern: Pattern,
        *,
        noise: Optional[object] = None,
        validate: bool = True,
        verify_ir: bool = False,
    ) -> Tuple[CompiledPattern, str, str]:
        """Like :meth:`get_or_compile` but also reports provenance:
        ``(compiled, digest, status)`` with status one of ``"memory-hit"``,
        ``"disk-hit"``, ``"miss"``."""
        options = {"validate": bool(validate), "verify_ir": bool(verify_ir)}
        digest = pattern_digest(pattern, noise=noise, options=options)
        compiled = self._memory_get(digest)
        if compiled is not None:
            self.stats.memory_hits += 1
            return compiled, digest, "memory-hit"
        compiled = self.load(digest)
        if compiled is not None:
            self.stats.disk_hits += 1
            self._memory_put(digest, compiled)
            return compiled, digest, "disk-hit"
        self.stats.misses += 1
        compiled = compile_pattern(pattern, validate=validate, verify_ir=verify_ir)
        if noise is not None:
            compiled = lower_noise(compiled, noise)
        self.store(digest, compiled)
        self._memory_put(digest, compiled)
        return compiled, digest, "miss"

    def digest_for(
        self,
        pattern: Pattern,
        *,
        noise: Optional[object] = None,
        validate: bool = True,
        verify_ir: bool = False,
    ) -> str:
        """The digest :meth:`get_or_compile` would use for these inputs."""
        options = {"validate": bool(validate), "verify_ir": bool(verify_ir)}
        return pattern_digest(pattern, noise=noise, options=options)

    # -- memory tier ---------------------------------------------------------
    def _memory_get(self, digest: str) -> Optional[CompiledPattern]:
        with self._lock:
            return self._memory.get(digest)

    def _memory_put(self, digest: str, compiled: CompiledPattern) -> None:
        if self._memory_entries <= 0:
            return
        with self._lock:
            self._memory[digest] = compiled
            while len(self._memory) > self._memory_entries:
                self._memory.popitem(last=False)

    # -- disk tier -----------------------------------------------------------
    def store(self, digest: str, compiled: CompiledPattern) -> Optional[str]:
        """Persist ``compiled`` under ``digest``; returns the entry path
        (``None`` without a disk tier).  Safe under concurrent writers:
        every writer stages privately and the last atomic rename wins —
        all of them wrote byte-equal payload modulo pickle memo order,
        and every published file is internally consistent."""
        if self.cache_dir is None:
            return None
        payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "version": CACHE_FORMAT_VERSION,
            "digest": digest,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
        }
        path = self.entry_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, json.dumps(header).encode() + b"\n" + payload)
        self.stats.stores += 1
        return path

    def load(self, digest: str) -> Optional[CompiledPattern]:
        """The disk entry for ``digest``, or ``None`` when absent *or*
        when any integrity check fails (counted as ``poisoned``) — a
        poisoned entry is indistinguishable from a miss to callers, who
        recompile and heal it by re-storing."""
        if self.cache_dir is None:
            return None
        try:
            with open(self.entry_path(digest), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        sep = blob.find(b"\n")
        if sep < 0:
            self.stats.poisoned += 1
            return None
        try:
            header = json.loads(blob[:sep].decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.stats.poisoned += 1
            return None
        payload = blob[sep + 1:]
        if not (
            isinstance(header, dict)
            and header.get("version") == CACHE_FORMAT_VERSION
            and header.get("digest") == digest
            and header.get("payload_bytes") == len(payload)
            and header.get("payload_sha256")
            == hashlib.sha256(payload).hexdigest()
        ):
            self.stats.poisoned += 1
            return None
        try:
            compiled = pickle.loads(payload)
        except Exception:
            self.stats.poisoned += 1
            return None
        if not isinstance(compiled, CompiledPattern):
            self.stats.poisoned += 1
            return None
        return compiled


# -- per-directory shared instances ------------------------------------------

_CACHES: Dict[str, PatternCache] = {}
_CACHES_LOCK = threading.Lock()


def get_cache(cache_dir: str) -> PatternCache:
    """The process-wide :class:`PatternCache` for ``cache_dir`` — shared so
    every ``compile_pattern(cache_dir=...)`` call in a process benefits
    from one memory tier and one stats ledger per directory."""
    key = os.path.abspath(os.fspath(cache_dir))
    with _CACHES_LOCK:
        cache = _CACHES.get(key)
        if cache is None:
            cache = PatternCache(key)
            _CACHES[key] = cache
        return cache
