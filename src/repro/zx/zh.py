"""ZH-calculus constructions (Section IV of the paper).

The ZH-calculus extends ZX with arity-n *H-boxes*: the n-legged box with
parameter ``a`` denotes the tensor with entry ``a`` at all-ones and 1
elsewhere, i.e. the diagonal map ``|x1..xn> -> a^{x1·x2·..·xn}|x1..xn>``
when placed on wires.  This is precisely the "classical non-linearity"
needed for multi-controlled gates: the paper (Sec. IV) uses it to express
the MIS partial mixer

    ``U_v(β) = Λ_{N(v)}(e^{iβ X_v})``

the X-rotation on v controlled on *all neighbors being 0*.  We realize it
as two H-boxes:

- box A with param ``e^{iβ}`` on the (negated) control wires — the global
  ``e^{iβ}`` phase branch when every control fires,
- box B with param ``e^{-2iβ}`` on controls plus the (Hadamard-conjugated)
  target — since ``e^{iβX} = H e^{iβZ} H`` and
  ``e^{iβZ} = e^{iβ} diag(1, e^{-2iβ})``.

Zero-controls are handled by sandwiching each control wire between X(π)
spiders (NOT conjugation).
"""

from __future__ import annotations

import cmath
import math

from repro.zx.diagram import Diagram, EdgeType


def controlled_phase_hbox_diagram(num_wires: int, phi: float) -> Diagram:
    """Diagram of ``|x> -> e^{i phi * x1·x2·...·xn} |x>`` on ``num_wires``.

    One Z-spider per wire, all joined to a single H-box with parameter
    ``e^{i phi}``.  For ``num_wires == 2`` this is CP(phi) up to scalar.
    """
    if num_wires < 1:
        raise ValueError("need at least one wire")
    d = Diagram()
    box = d.add_hbox(cmath.exp(1j * phi))
    for _ in range(num_wires):
        i = d.add_boundary("input")
        z = d.add_z(0.0)
        o = d.add_boundary("output")
        d.add_edge(i, z, EdgeType.SIMPLE)
        d.add_edge(z, o, EdgeType.SIMPLE)
        d.add_edge(z, box, EdgeType.SIMPLE)
    return d


def mis_partial_mixer_diagram(degree: int, beta: float) -> Diagram:
    """ZH-diagram of the MIS partial mixer ``U_v(β) = Λ_{N(v)}(e^{iβX_v})``.

    Wire layout (little-endian order of boundaries): wires ``0..degree-1``
    are the neighborhood ``N(v)`` (controls on value 0), wire ``degree`` is
    the vertex ``v`` itself.  Matches the paper's Section IV diagram with
    the ``e^{iβ}``-labeled H-box.
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    d = Diagram()
    box_a = d.add_hbox(cmath.exp(1j * beta))
    box_b = d.add_hbox(cmath.exp(-2j * beta))

    # Control wires: X(π) – Z – X(π), hub Z joined to both boxes.
    for _ in range(degree):
        i = d.add_boundary("input")
        x1 = d.add_x(math.pi)
        z = d.add_z(0.0)
        x2 = d.add_x(math.pi)
        o = d.add_boundary("output")
        d.add_edge(i, x1, EdgeType.SIMPLE)
        d.add_edge(x1, z, EdgeType.SIMPLE)
        d.add_edge(z, x2, EdgeType.SIMPLE)
        d.add_edge(x2, o, EdgeType.SIMPLE)
        d.add_edge(z, box_a, EdgeType.SIMPLE)
        d.add_edge(z, box_b, EdgeType.SIMPLE)

    # Target wire: H – Z – H, hub joined to box B only.
    i = d.add_boundary("input")
    z = d.add_z(0.0)
    o = d.add_boundary("output")
    d.add_edge(i, z, EdgeType.HADAMARD)
    d.add_edge(z, o, EdgeType.HADAMARD)
    d.add_edge(z, box_b, EdgeType.SIMPLE)

    # Degenerate case: with no controls box A is a free scalar e^{iβ} and
    # box B an arity-1 box — both handled by the tensor evaluator.
    return d
