"""Graph-state and phase-gadget diagram constructors.

Eq. (5): the graph state ``|G> = prod_{(u,v) in E} CZ_{uv} |+>^n`` has a
ZX-diagram with *the same structure as G*: one phase-0 Z-spider per vertex
carrying the output wire, one Hadamard edge per graph edge.

Eq. (7): the phase-separation factor ``e^{i γ Z_u Z_v}`` is a *phase gadget*:
a phase-0 X-spider hub on wires u,v with an arity-1 Z(±2γ) spider attached.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.zx.diagram import Diagram, EdgeType


def graph_state_diagram(n: int, edges: Sequence[Tuple[int, int]]) -> Diagram:
    """ZX-diagram of the graph state on ``n`` vertices (Eq. 5).

    Outputs are ordered by vertex index; there are no inputs (state diagram).
    """
    d = Diagram()
    spiders = [d.add_z(0.0) for _ in range(n)]
    for v in range(n):
        out = d.add_boundary("output")
        d.add_edge(spiders[v], out, EdgeType.SIMPLE)
    # Keep outputs ordered by vertex (add_boundary appended in order).
    for u, v in edges:
        if u == v:
            raise ValueError("graph states have no self-loops")
        d.add_edge(spiders[u], spiders[v], EdgeType.HADAMARD)
    return d


def phase_gadget_diagram(
    n: int, pairs: Sequence[Tuple[int, int]], gamma: float
) -> Diagram:
    """Diagram of ``prod_{(u,v)} e^{-i (gamma/2) Z_u Z_v}`` on ``n`` wires.

    One gadget per pair: X-hub connected by plain wires to Z-spiders on the
    two qubit wires, with a dangling Z(gamma) phase leaf (Eq. 7, where the
    paper's ``e^{iγZZ}`` is ``gamma -> -2γ`` in our rotation convention).
    """
    d = Diagram()
    ins = [d.add_boundary("input") for _ in range(n)]
    frontier: List[int] = list(ins)

    def put_z(q: int) -> int:
        z = d.add_z(0.0)
        d.add_edge(frontier[q], z, EdgeType.SIMPLE)
        frontier[q] = z
        return z

    for u, v in pairs:
        zu = put_z(u)
        zv = put_z(v)
        hub = d.add_x(0.0)
        leaf = d.add_z(gamma)
        d.add_edge(hub, zu, EdgeType.SIMPLE)
        d.add_edge(hub, zv, EdgeType.SIMPLE)
        d.add_edge(hub, leaf, EdgeType.SIMPLE)
    for q in range(n):
        out = d.add_boundary("output")
        d.add_edge(frontier[q], out, EdgeType.SIMPLE)
    return d
