"""ZX(H)-diagram data structure.

A diagram is an undirected multigraph whose vertices are Z-spiders, X-spiders,
H-boxes, or boundary points, and whose edges are plain wires or Hadamard
wires.  Boundary vertices are degree-1 and appear in the ordered ``inputs`` /
``outputs`` lists; everything else is internal and may be rearranged freely
(only the topology matters, Section II.A of the paper).

Phases are radians stored mod 2π.  H-boxes carry a complex ``param`` instead
of a phase (ZH convention: the arity-n H-box has tensor entries
``param`` when all legs are 1, else 1).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

TWO_PI = 2.0 * math.pi


def normalize_phase(phase: float) -> float:
    """Reduce a phase to ``[0, 2π)`` with tolerance snapping at the ends."""
    p = math.fmod(float(phase), TWO_PI)
    if p < 0:
        p += TWO_PI
    if abs(p - TWO_PI) < 1e-12:
        p = 0.0
    return p


def phases_equal(a: float, b: float, atol: float = 1e-9) -> bool:
    """Phase equality mod 2π."""
    d = normalize_phase(a - b)
    return d < atol or TWO_PI - d < atol


class VertexType(enum.Enum):
    """Kinds of diagram vertices."""

    Z = "Z"
    X = "X"
    H_BOX = "H"
    BOUNDARY = "B"


class EdgeType(enum.Enum):
    """Plain wire or Hadamard wire."""

    SIMPLE = "-"
    HADAMARD = "h"


@dataclass
class Vertex:
    """Internal vertex record; ``phase`` for spiders, ``param`` for H-boxes."""

    vtype: VertexType
    phase: float = 0.0
    param: complex = -1.0  # ZH default: H-box with param -1 is ~ Hadamard


class Diagram:
    """Mutable ZX(H) multigraph with ordered boundaries."""

    def __init__(self) -> None:
        self._vertices: Dict[int, Vertex] = {}
        self._edges: Dict[int, Tuple[int, int, EdgeType]] = {}
        self._incident: Dict[int, List[int]] = {}
        self._next_v = 0
        self._next_e = 0
        self.inputs: List[int] = []
        self.outputs: List[int] = []

    # -- construction --------------------------------------------------------
    def add_vertex(
        self,
        vtype: VertexType,
        phase: float = 0.0,
        param: complex = -1.0,
    ) -> int:
        v = self._next_v
        self._next_v += 1
        self._vertices[v] = Vertex(vtype, normalize_phase(phase), complex(param))
        self._incident[v] = []
        return v

    def add_z(self, phase: float = 0.0) -> int:
        return self.add_vertex(VertexType.Z, phase)

    def add_x(self, phase: float = 0.0) -> int:
        return self.add_vertex(VertexType.X, phase)

    def add_hbox(self, param: complex = -1.0) -> int:
        return self.add_vertex(VertexType.H_BOX, 0.0, param)

    def add_boundary(self, kind: str) -> int:
        """Add a boundary vertex and register it as 'input' or 'output'."""
        v = self.add_vertex(VertexType.BOUNDARY)
        if kind == "input":
            self.inputs.append(v)
        elif kind == "output":
            self.outputs.append(v)
        else:
            raise ValueError("kind must be 'input' or 'output'")
        return v

    def add_edge(self, u: int, v: int, etype: EdgeType = EdgeType.SIMPLE) -> int:
        if u not in self._vertices or v not in self._vertices:
            raise ValueError("edge endpoint does not exist")
        for w in (u, v):
            if self._vertices[w].vtype is VertexType.BOUNDARY and self.degree(w) >= 1:
                raise ValueError(f"boundary vertex {w} already has an edge")
        e = self._next_e
        self._next_e += 1
        self._edges[e] = (u, v, etype)
        self._incident[u].append(e)
        if u != v:
            self._incident[v].append(e)
        else:
            self._incident[u].append(e)  # self-loop counts twice
        return e

    # -- removal -------------------------------------------------------------
    def remove_edge(self, e: int) -> None:
        u, v, _ = self._edges.pop(e)
        self._incident[u] = [x for x in self._incident[u] if x != e]
        if v != u:
            self._incident[v] = [x for x in self._incident[v] if x != e]

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` and all incident edges (boundary lists updated)."""
        for e in list(self._incident.get(v, [])):
            if e in self._edges:
                self.remove_edge(e)
        self._vertices.pop(v)
        self._incident.pop(v, None)
        self.inputs = [b for b in self.inputs if b != v]
        self.outputs = [b for b in self.outputs if b != v]

    # -- inspection ----------------------------------------------------------
    def vertices(self) -> Iterator[int]:
        return iter(list(self._vertices))

    def edges(self) -> Iterator[int]:
        return iter(list(self._edges))

    def vertex(self, v: int) -> Vertex:
        return self._vertices[v]

    def vtype(self, v: int) -> VertexType:
        return self._vertices[v].vtype

    def phase(self, v: int) -> float:
        return self._vertices[v].phase

    def set_phase(self, v: int, phase: float) -> None:
        self._vertices[v].phase = normalize_phase(phase)

    def add_phase(self, v: int, phase: float) -> None:
        self.set_phase(v, self._vertices[v].phase + phase)

    def param(self, v: int) -> complex:
        return self._vertices[v].param

    def edge_info(self, e: int) -> Tuple[int, int, EdgeType]:
        return self._edges[e]

    def incident_edges(self, v: int) -> List[int]:
        """Edge ids at ``v`` (self-loops listed twice)."""
        return list(self._incident[v])

    def degree(self, v: int) -> int:
        return len(self._incident[v])

    def neighbors(self, v: int) -> List[int]:
        """Neighbor list with multiplicity (self excluded for self-loops)."""
        out = []
        for e in set(self._incident[v]):
            u, w, _ = self._edges[e]
            other = w if u == v else u
            if other != v:
                out.append(other)
        return out

    def edges_between(self, u: int, v: int) -> List[int]:
        return [
            e
            for e in set(self._incident[u])
            if e in self._edges and set(self._edges[e][:2]) == ({u, v} if u != v else {u})
        ]

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return len(self._edges)

    def num_spiders(self) -> int:
        return sum(
            1
            for v in self._vertices.values()
            if v.vtype in (VertexType.Z, VertexType.X)
        )

    # -- validation & utilities ------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for b in self.inputs + self.outputs:
            if b not in self._vertices:
                raise ValueError(f"boundary {b} missing")
            if self._vertices[b].vtype is not VertexType.BOUNDARY:
                raise ValueError(f"boundary {b} has wrong type")
            if self.degree(b) != 1:
                raise ValueError(f"boundary {b} must have degree 1, has {self.degree(b)}")
        seen = set(self.inputs) & set(self.outputs)
        if seen:
            raise ValueError(f"vertices {seen} are both input and output")
        for v, rec in self._vertices.items():
            if rec.vtype is VertexType.BOUNDARY and v not in self.inputs + self.outputs:
                raise ValueError(f"boundary vertex {v} not registered")

    def copy(self) -> "Diagram":
        d = Diagram()
        d._vertices = {v: Vertex(r.vtype, r.phase, r.param) for v, r in self._vertices.items()}
        d._edges = dict(self._edges)
        d._incident = {v: list(es) for v, es in self._incident.items()}
        d._next_v = self._next_v
        d._next_e = self._next_e
        d.inputs = list(self.inputs)
        d.outputs = list(self.outputs)
        return d

    def compose(self, other: "Diagram") -> "Diagram":
        """Sequential composition: ``other`` after ``self``.

        ``self.outputs`` are glued to ``other.inputs`` (plain wires), so the
        resulting linear map is ``M_other @ M_self``.
        """
        if len(self.outputs) != len(other.inputs):
            raise ValueError("boundary arity mismatch in composition")
        out = self.copy()
        vmap: Dict[int, int] = {}
        for v in other._vertices:
            vmap[v] = out.add_vertex(
                other._vertices[v].vtype,
                other._vertices[v].phase,
                other._vertices[v].param,
            )
        for e, (u, v, t) in other._edges.items():
            out._edges[out._next_e] = (vmap[u], vmap[v], t)
            out._incident[vmap[u]].append(out._next_e)
            if u != v:
                out._incident[vmap[v]].append(out._next_e)
            else:
                out._incident[vmap[u]].append(out._next_e)
            out._next_e += 1
        # Glue: for each pair (my output o, their input i) replace the two
        # boundary vertices by a direct wire between their inner neighbors.
        new_outputs = [vmap[v] for v in other.outputs]
        for o, i in zip(list(out.outputs), [vmap[v] for v in other.inputs]):
            (e_o,) = out.incident_edges(o)
            (e_i,) = out.incident_edges(i)
            uo, vo, to = out._edges[e_o]
            ui, vi, ti = out._edges[e_i]
            n_o = vo if uo == o else uo
            n_i = vi if ui == i else ui
            etype = EdgeType.HADAMARD if (to is EdgeType.HADAMARD) != (ti is EdgeType.HADAMARD) else EdgeType.SIMPLE
            out.remove_vertex(o)
            out.remove_vertex(i)
            out.add_edge(n_o, n_i, etype)
        out.outputs = new_outputs
        # Drop other's input boundary registrations copied via vmap.
        out.inputs = [b for b in out.inputs if b in out._vertices]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Diagram({self.num_vertices()} vertices, {self.num_edges()} edges, "
            f"{len(self.inputs)}->{len(self.outputs)})"
        )
