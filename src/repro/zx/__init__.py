"""ZX-calculus engine.

ZX-diagrams are the derivation language of the paper (Section II.A): every
measurement pattern in Sections III-IV is obtained by rewriting a circuit
diagram with the Fig. 1 rules.  This package provides:

- :class:`~repro.zx.diagram.Diagram` — string diagrams with Z/X spiders,
  H-boxes (the ZH extension used for the MIS mixer), plain and Hadamard
  edges, and ordered boundaries;
- :mod:`~repro.zx.tensor` — numerical evaluation of a diagram to its linear
  map, the semantic ground truth every rewrite is checked against;
- :mod:`~repro.zx.rules` — the Fig. 1 rewrite rules (f, h, id, hh, pi, c, b,
  hopf) as executable diagram transformations;
- :mod:`~repro.zx.circuits` — circuit ↔ diagram translation;
- :mod:`~repro.zx.graphstate` — graph-state diagrams (Eq. 5) and phase
  gadgets (Eq. 7);
- :mod:`~repro.zx.zh` — ZH-calculus constructions for the Section IV
  controlled mixer.

Semantics are tracked up to a nonzero scalar, matching the paper's "∝"
convention; comparisons go through
:func:`repro.linalg.compare.proportionality_factor`.
"""

from repro.zx.diagram import Diagram, EdgeType, VertexType
from repro.zx.tensor import diagram_matrix, diagram_tensor
from repro.zx.circuits import circuit_to_diagram
from repro.zx.graphstate import graph_state_diagram, phase_gadget_diagram
from repro.zx.unfuse import cap_degree, max_spider_degree, unfuse

__all__ = [
    "cap_degree",
    "max_spider_degree",
    "unfuse",
    "Diagram",
    "EdgeType",
    "VertexType",
    "diagram_matrix",
    "diagram_tensor",
    "circuit_to_diagram",
    "graph_state_diagram",
    "phase_gadget_diagram",
]
