"""The Fig. 1 ZX rewrite rules as executable diagram transformations.

Each rule mutates the diagram in place and preserves its semantics *up to a
nonzero scalar* (the paper's "∝"); `tests/test_zx_rules.py` verifies every
rule against :func:`repro.zx.tensor.diagram_matrix` on randomized diagrams
(experiment E1).

Implemented rules and their Fig. 1 labels:

- ``fuse``              (f)    spider fusion along a plain edge,
- ``color_change``      (h)    toggle a spider's color and its edge types,
- ``remove_identity``   (id)+(hh)  drop phase-0 arity-2 spiders, XORing edge
                               types so double Hadamards cancel,
- ``pi_push``           (π)    push an X(π) through a Z-spider (negating its
                               phase) and vice versa,
- ``copy_state``        (c)    copy a Pauli state through an opposite-color
                               spider,
- ``bialgebra``         (b)    the Z-X bialgebra expansion,
- ``remove_parallel_pair``  (hopf) cancel a parallel edge pair (plain edges
                               between opposite colors, or Hadamard edges
                               between same colors).

Self-loop conventions used during fusion: a plain self-loop on a spider
disappears; a Hadamard self-loop disappears adding π to the spider phase.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.zx.diagram import Diagram, EdgeType, VertexType, phases_equal

_SPIDERS = (VertexType.Z, VertexType.X)


def _other_endpoint(d: Diagram, e: int, v: int) -> int:
    u, w, _ = d.edge_info(e)
    return w if u == v else u


def _resolve_self_loops(d: Diagram, v: int) -> None:
    """Apply the self-loop conventions at spider ``v``."""
    for e in list(set(d.incident_edges(v))):
        u, w, t = d.edge_info(e)
        if u == w == v:
            d.remove_edge(e)
            if t is EdgeType.HADAMARD:
                d.add_phase(v, math.pi)


def fuse(d: Diagram, edge: int) -> int:
    """Rule (f): fuse the two same-color spiders joined by plain ``edge``.

    Returns the id of the surviving spider.  Raises if the edge is not a
    plain edge between two distinct spiders of the same color.
    """
    u, v, t = d.edge_info(edge)
    if t is not EdgeType.SIMPLE:
        raise ValueError("fusion requires a plain edge")
    if u == v:
        raise ValueError("cannot fuse a self-loop")
    if d.vtype(u) not in _SPIDERS or d.vtype(u) is not d.vtype(v):
        raise ValueError("fusion requires two spiders of the same color")
    d.add_phase(u, d.phase(v))
    d.remove_edge(edge)
    # Re-point v's remaining edges at u.
    for e in list(set(d.incident_edges(v))):
        a, b, et = d.edge_info(e)
        d.remove_edge(e)
        na = u if a == v else a
        nb = u if b == v else b
        d.add_edge(na, nb, et)
    d.remove_vertex(v)
    _resolve_self_loops(d, u)
    return u


def fuse_all(d: Diagram) -> int:
    """Fuse until no plain edge joins two same-color spiders; returns count."""
    count = 0
    progress = True
    while progress:
        progress = False
        for e in d.edges():
            try:
                u, v, t = d.edge_info(e)
            except KeyError:
                continue
            if (
                t is EdgeType.SIMPLE
                and u != v
                and d.vtype(u) in _SPIDERS
                and d.vtype(u) is d.vtype(v)
            ):
                fuse(d, e)
                count += 1
                progress = True
                break
    return count


def color_change(d: Diagram, v: int) -> None:
    """Rule (h): flip spider color of ``v``, toggling incident edge types.

    Self-loops are invariant (they receive a Hadamard on both ends).
    """
    if d.vtype(v) not in _SPIDERS:
        raise ValueError("color change applies to spiders only")
    rec = d.vertex(v)
    rec.vtype = VertexType.X if rec.vtype is VertexType.Z else VertexType.Z
    for e in list(set(d.incident_edges(v))):
        a, b, t = d.edge_info(e)
        if a == b:
            continue  # H on both ends of a loop cancels
        nt = EdgeType.SIMPLE if t is EdgeType.HADAMARD else EdgeType.HADAMARD
        d.remove_edge(e)
        d.add_edge(a, b, nt)


def remove_identity(d: Diagram, v: int) -> None:
    """Rules (id)/(hh): delete a phase-0 degree-2 spider, joining its
    neighbors with the XOR of the two edge types."""
    if d.vtype(v) not in _SPIDERS:
        raise ValueError("identity removal applies to spiders")
    if not phases_equal(d.phase(v), 0.0):
        raise ValueError("identity removal requires phase 0")
    inc = d.incident_edges(v)
    if len(inc) != 2:
        raise ValueError("identity removal requires degree 2")
    e1, e2 = inc
    if e1 == e2:
        raise ValueError("cannot remove a spider whose edges form a self-loop")
    n1 = _other_endpoint(d, e1, v)
    n2 = _other_endpoint(d, e2, v)
    t1 = d.edge_info(e1)[2]
    t2 = d.edge_info(e2)[2]
    combined = (
        EdgeType.HADAMARD
        if (t1 is EdgeType.HADAMARD) != (t2 is EdgeType.HADAMARD)
        else EdgeType.SIMPLE
    )
    d.remove_vertex(v)
    d.add_edge(n1, n2, combined)
    for n in (n1, n2):
        if d.vtype(n) in _SPIDERS:
            _resolve_self_loops(d, n)


def remove_identities(d: Diagram) -> int:
    """Drive (id) to a fixed point; returns number removed."""
    count = 0
    progress = True
    while progress:
        progress = False
        for v in d.vertices():
            if (
                v in list(d.vertices())
                and d.vtype(v) in _SPIDERS
                and phases_equal(d.phase(v), 0.0)
                and d.degree(v) == 2
                and len(set(d.incident_edges(v))) == 2
            ):
                remove_identity(d, v)
                count += 1
                progress = True
                break
    return count


def pi_push(d: Diagram, pi_vertex: int) -> List[int]:
    """Rule (π): push a degree-2 π-spider through the opposite-color spider
    it points at.

    ``pi_vertex`` must be an arity-2 spider with phase π, connected by a
    plain edge to a spider of the opposite color ``v``.  The effect: ``v``'s
    phase negates, ``pi_vertex`` disappears (its outer wire reattaches to
    ``v``), and a fresh π-spider of the same color as ``pi_vertex`` appears
    on every *other* leg of ``v``.  Returns the new π-spider ids.
    """
    if d.vtype(pi_vertex) not in _SPIDERS:
        raise ValueError("pi_push needs a spider")
    if not phases_equal(d.phase(pi_vertex), math.pi):
        raise ValueError("pi_push needs phase π")
    inc = d.incident_edges(pi_vertex)
    if len(inc) != 2 or inc[0] == inc[1]:
        raise ValueError("pi_push needs a degree-2 spider")
    # Find the plain edge leading to an opposite-color spider.
    target_edge: Optional[int] = None
    for e in inc:
        u, w, t = d.edge_info(e)
        other = w if u == pi_vertex else u
        if (
            t is EdgeType.SIMPLE
            and d.vtype(other) in _SPIDERS
            and d.vtype(other) is not d.vtype(pi_vertex)
        ):
            target_edge = e
            break
    if target_edge is None:
        raise ValueError("pi_push target must be an opposite-color spider on a plain edge")
    v = _other_endpoint(d, target_edge, pi_vertex)
    outer_edge = inc[0] if inc[1] == target_edge else inc[1]
    outer_n = _other_endpoint(d, outer_edge, pi_vertex)
    outer_t = d.edge_info(outer_edge)[2]
    pi_color = d.vtype(pi_vertex)

    d.remove_vertex(pi_vertex)  # drops both its edges
    d.set_phase(v, -d.phase(v))
    new_pis: List[int] = []
    for e in list(set(d.incident_edges(v))):
        a, b, t = d.edge_info(e)
        if a == b:
            continue
        other = b if a == v else a
        p = d.add_vertex(pi_color, math.pi)
        d.remove_edge(e)
        d.add_edge(v, p, EdgeType.SIMPLE)
        d.add_edge(p, other, t)
        new_pis.append(p)
    d.add_edge(v, outer_n, outer_t)
    return new_pis


def copy_state(d: Diagram, state_vertex: int) -> List[int]:
    """Rule (c): copy a Pauli state through an opposite-color spider.

    ``state_vertex`` is an arity-1 spider with phase in {0, π} joined by a
    plain edge to a spider of the opposite color.  Both disappear; a copy of
    the state lands on each remaining leg of the spider.  Returns new ids.
    """
    if d.vtype(state_vertex) not in _SPIDERS:
        raise ValueError("copy_state needs a spider")
    ph = d.phase(state_vertex)
    if not (phases_equal(ph, 0.0) or phases_equal(ph, math.pi)):
        raise ValueError("copy_state needs a Pauli phase (0 or π)")
    inc = d.incident_edges(state_vertex)
    if len(inc) != 1:
        raise ValueError("copy_state needs an arity-1 state")
    e = inc[0]
    u, w, t = d.edge_info(e)
    if t is not EdgeType.SIMPLE:
        raise ValueError("copy_state needs a plain connecting edge")
    v = w if u == state_vertex else u
    if d.vtype(v) not in _SPIDERS or d.vtype(v) is d.vtype(state_vertex):
        raise ValueError("copy_state target must be the opposite color")
    color = d.vtype(state_vertex)
    d.remove_vertex(state_vertex)
    new_states: List[int] = []
    legs = [(ee, _other_endpoint(d, ee, v), d.edge_info(ee)[2]) for ee in list(set(d.incident_edges(v)))]
    d.remove_vertex(v)
    for _, other, etype in legs:
        s = d.add_vertex(color, ph)
        d.add_edge(s, other, etype)
        new_states.append(s)
    return new_states


def bialgebra(d: Diagram, edge: int) -> Tuple[List[int], List[int]]:
    """Rule (b): expand a Z-X spider pair joined by one plain edge into the
    complete bipartite form.

    Both spiders must be phase-0.  Legs of the Z spider each receive a new
    X(0) spider, legs of the X spider a new Z(0) spider, and every new X is
    joined to every new Z by a plain edge.  Returns (new_x_ids, new_z_ids).
    """
    u, v, t = d.edge_info(edge)
    if t is not EdgeType.SIMPLE or u == v:
        raise ValueError("bialgebra needs a plain edge between two spiders")
    types = {d.vtype(u), d.vtype(v)}
    if types != {VertexType.Z, VertexType.X}:
        raise ValueError("bialgebra needs one Z and one X spider")
    if not (phases_equal(d.phase(u), 0) and phases_equal(d.phase(v), 0)):
        raise ValueError("bialgebra needs phase-0 spiders")
    if len(d.edges_between(u, v)) != 1:
        raise ValueError("bialgebra needs exactly one connecting edge")
    z = u if d.vtype(u) is VertexType.Z else v
    x = v if z == u else u

    z_legs = [
        (_other_endpoint(d, e, z), d.edge_info(e)[2])
        for e in set(d.incident_edges(z))
        if e != edge
    ]
    x_legs = [
        (_other_endpoint(d, e, x), d.edge_info(e)[2])
        for e in set(d.incident_edges(x))
        if e != edge
    ]
    d.remove_vertex(z)
    d.remove_vertex(x)
    new_x = []
    for other, etype in z_legs:
        p = d.add_x(0.0)
        d.add_edge(p, other, etype)
        new_x.append(p)
    new_z = []
    for other, etype in x_legs:
        p = d.add_z(0.0)
        d.add_edge(p, other, etype)
        new_z.append(p)
    for a in new_x:
        for b in new_z:
            d.add_edge(a, b, EdgeType.SIMPLE)
    return new_x, new_z


def remove_parallel_pair(d: Diagram, u: int, v: int) -> bool:
    """Rule (hopf): cancel one parallel edge pair between spiders ``u,v``.

    Plain pairs cancel between *opposite*-color spiders; Hadamard pairs
    cancel between *same*-color spiders.  Returns True if a pair was removed.
    """
    if u == v or d.vtype(u) not in _SPIDERS or d.vtype(v) not in _SPIDERS:
        raise ValueError("hopf applies between two distinct spiders")
    same_color = d.vtype(u) is d.vtype(v)
    wanted = EdgeType.HADAMARD if same_color else EdgeType.SIMPLE
    matching = [e for e in d.edges_between(u, v) if d.edge_info(e)[2] is wanted]
    if len(matching) < 2:
        return False
    d.remove_edge(matching[0])
    d.remove_edge(matching[1])
    return True


def basic_simplify(d: Diagram) -> None:
    """Fuse spiders, cancel parallel pairs, and drop identities to fixpoint."""
    progress = True
    while progress:
        progress = False
        if fuse_all(d):
            progress = True
        # Parallel pair cancellation across all spider pairs.
        for e in d.edges():
            try:
                u, v, _ = d.edge_info(e)
            except KeyError:
                continue
            if u == v:
                continue
            if d.vtype(u) in _SPIDERS and d.vtype(v) in _SPIDERS:
                if remove_parallel_pair(d, u, v):
                    progress = True
        if remove_identities(d):
            progress = True
