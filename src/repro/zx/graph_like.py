"""Graph-like form, local complementation and pivoting.

The machinery of Duncan–Kissinger–Perdrix–van de Wetering (the paper's
ref. [31]) that powers ZX-based circuit simplification and the
MBQC/circuit correspondence:

- :func:`to_graph_like` — normalize a diagram so every spider is a
  Z-spider and every spider-spider wire is a Hadamard edge (boundary wires
  may stay plain).  Graph-like diagrams are exactly "graph states with
  phases", the ZX image of MBQC resource states;
- :func:`local_complementation` — the LC rule: on a spider with phase
  ``±π/2``, complement the neighborhood, transfer ``∓π/2`` to each
  neighbor, delete the spider;
- :func:`pivot` — the pivot rule on a Pauli-phase edge pair: complement
  across the three neighborhood classes and delete both spiders.

All rules are semantics-preserving up to scalar and are verified against
tensors in ``tests/test_zx_graph_like.py``.
"""

from __future__ import annotations

import math
from typing import List, Set, Tuple

from repro.zx.diagram import Diagram, EdgeType, VertexType, phases_equal
from repro.zx.rules import color_change, fuse_all, remove_parallel_pair

_SPIDERS = (VertexType.Z, VertexType.X)


def to_graph_like(diagram: Diagram) -> None:
    """Normalize in place: Z-spiders only, Hadamard edges between spiders.

    Steps: recolor every X spider (h rule), fuse same-color plain-connected
    spiders, cancel parallel H-edge pairs, drop phase-0 arity-2 identities.
    H-boxes are not supported here (ZH diagrams have no graph-like form).
    """
    for v in list(diagram.vertices()):
        if diagram.vtype(v) is VertexType.H_BOX:
            raise ValueError("graph-like form is defined for ZX (no H-boxes)")
    for v in list(diagram.vertices()):
        if v in set(diagram.vertices()) and diagram.vtype(v) is VertexType.X:
            color_change(diagram, v)
    progress = True
    while progress:
        progress = False
        if fuse_all(diagram):
            progress = True
        for e in list(diagram.edges()):
            try:
                u, w, t = diagram.edge_info(e)
            except KeyError:
                continue
            if (
                u != w
                and diagram.vtype(u) is VertexType.Z
                and diagram.vtype(w) is VertexType.Z
                and remove_parallel_pair(diagram, u, w)
            ):
                progress = True
    # Plain spider-spider edges can only remain between same-color spiders
    # (fused already) — so all remaining internal edges are Hadamard.


def is_graph_like(diagram: Diagram) -> bool:
    """True iff all spiders are Z and spider-spider edges are Hadamard,
    with no parallel spider-spider edges or self-loops."""
    for v in diagram.vertices():
        if diagram.vtype(v) is VertexType.X or diagram.vtype(v) is VertexType.H_BOX:
            return False
    seen: Set[Tuple[int, int]] = set()
    for e in diagram.edges():
        u, w, t = diagram.edge_info(e)
        if u == w:
            return False
        both_spiders = (
            diagram.vtype(u) is VertexType.Z and diagram.vtype(w) is VertexType.Z
        )
        if both_spiders:
            if t is not EdgeType.HADAMARD:
                return False
            key = (min(u, w), max(u, w))
            if key in seen:
                return False
            seen.add(key)
    return True


def _spider_neighbors_h(diagram: Diagram, v: int) -> List[int]:
    """Spider neighbors of ``v`` over Hadamard edges."""
    out = []
    for e in set(diagram.incident_edges(v)):
        u, w, t = diagram.edge_info(e)
        other = w if u == v else u
        if t is EdgeType.HADAMARD and diagram.vtype(other) is VertexType.Z:
            out.append(other)
    return out


def _toggle_h_edge(diagram: Diagram, a: int, b: int) -> None:
    existing = [
        e for e in diagram.edges_between(a, b)
        if diagram.edge_info(e)[2] is EdgeType.HADAMARD
    ]
    if existing:
        diagram.remove_edge(existing[0])
    else:
        diagram.add_edge(a, b, EdgeType.HADAMARD)


def local_complementation(diagram: Diagram, v: int) -> None:
    """LC rule: remove a ``±π/2`` Z-spider whose wires are all Hadamard
    edges to other Z-spiders, complementing its neighborhood and adding
    ``∓π/2`` to each neighbor."""
    if diagram.vtype(v) is not VertexType.Z:
        raise ValueError("local complementation needs a Z spider")
    ph = diagram.phase(v)
    if phases_equal(ph, math.pi / 2):
        sign = 1.0
    elif phases_equal(ph, 3 * math.pi / 2):
        sign = -1.0
    else:
        raise ValueError("local complementation needs phase ±π/2")
    nbrs = _spider_neighbors_h(diagram, v)
    if len(nbrs) != diagram.degree(v) or len(set(nbrs)) != len(nbrs):
        raise ValueError("all wires must be single Hadamard edges to Z spiders")
    diagram.remove_vertex(v)
    for i in range(len(nbrs)):
        diagram.add_phase(nbrs[i], -sign * math.pi / 2)
        for j in range(i + 1, len(nbrs)):
            _toggle_h_edge(diagram, nbrs[i], nbrs[j])


def pivot(diagram: Diagram, u: int, v: int) -> None:
    """Pivot rule: delete an H-connected pair of Pauli-phase (0 or π)
    Z-spiders, complementing edges between the three neighborhood classes
    (N(u)-only, N(v)-only, common) and adding the partners' phases.

    Requires all wires of ``u`` and ``v`` to be Hadamard edges to Z
    spiders.
    """
    for w in (u, v):
        if diagram.vtype(w) is not VertexType.Z:
            raise ValueError("pivot needs Z spiders")
        ph = diagram.phase(w)
        if not (phases_equal(ph, 0.0) or phases_equal(ph, math.pi)):
            raise ValueError("pivot needs Pauli phases (0 or π)")
    conn = [
        e for e in diagram.edges_between(u, v)
        if diagram.edge_info(e)[2] is EdgeType.HADAMARD
    ]
    if len(conn) != 1:
        raise ValueError("pivot needs exactly one Hadamard edge between the pair")
    nu = set(_spider_neighbors_h(diagram, u)) - {v}
    nv = set(_spider_neighbors_h(diagram, v)) - {u}
    if len(nu) + 1 != diagram.degree(u) or len(nv) + 1 != diagram.degree(v):
        raise ValueError("all wires must be single Hadamard edges to Z spiders")
    common = nu & nv
    only_u = nu - common
    only_v = nv - common
    pu, pv = diagram.phase(u), diagram.phase(v)
    diagram.remove_vertex(u)
    diagram.remove_vertex(v)
    # Complement between each pair of classes.
    for a_set, b_set in ((only_u, only_v), (only_u, common), (only_v, common)):
        for a in a_set:
            for b in b_set:
                _toggle_h_edge(diagram, a, b)
    # Phase updates: N(u)-only gains phase(v), N(v)-only gains phase(u),
    # common gains phase(u)+phase(v)+π.
    for a in only_u:
        diagram.add_phase(a, pv)
    for b in only_v:
        diagram.add_phase(b, pu)
    for c in common:
        diagram.add_phase(c, pu + pv + math.pi)


def clifford_simplify(diagram: Diagram) -> int:
    """Greedy interior Clifford simplification: repeatedly apply LC on
    ``±π/2`` interior spiders and pivots on Pauli pairs.  Returns the
    number of rule applications.  (The full [31] algorithm also extracts
    circuits; here we only reduce spider counts, which is what the
    resource discussion needs.)"""
    count = 0
    progress = True
    while progress:
        progress = False
        for v in list(diagram.vertices()):
            if v not in set(diagram.vertices()):
                continue
            if diagram.vtype(v) is not VertexType.Z:
                continue
            ph = diagram.phase(v)
            if phases_equal(ph, math.pi / 2) or phases_equal(ph, 3 * math.pi / 2):
                try:
                    local_complementation(diagram, v)
                    count += 1
                    progress = True
                    break
                except ValueError:
                    continue
        if progress:
            continue
        for e in list(diagram.edges()):
            try:
                u, w, t = diagram.edge_info(e)
            except KeyError:
                continue
            if t is not EdgeType.HADAMARD or u == w:
                continue
            try:
                pivot(diagram, u, w)
                count += 1
                progress = True
                break
            except ValueError:
                continue
    return count
