"""Spider un-fusing and degree capping (Section III / ref. [49]).

The paper: the MBQC-QAOA resource graph "is not a planar graph in general.
However, it can be compiled in a straight-forward way into planar graphs of
the target hardware via un-fusing nodes [49]".  Un-fusing is the inverse of
the (f) rule: split a spider into two same-color spiders joined by a plain
wire, partitioning its legs.  Iterating it caps the maximum spider degree —
the first step of compiling onto degree-limited (e.g. photonic cluster)
hardware.
"""

from __future__ import annotations

from typing import Sequence

from repro.zx.diagram import Diagram, EdgeType, VertexType

_SPIDERS = (VertexType.Z, VertexType.X)


def unfuse(diagram: Diagram, vertex: int, moved_edges: Sequence[int]) -> int:
    """Split ``vertex``: a fresh same-color phase-0 spider takes over the
    edges in ``moved_edges`` and connects back by a plain wire.

    Inverse of :func:`repro.zx.rules.fuse`; semantics preserved exactly (up
    to the global-scalar convention).  Returns the new spider's id.
    """
    if diagram.vtype(vertex) not in _SPIDERS:
        raise ValueError("can only unfuse spiders")
    moved = list(moved_edges)
    incident = set(diagram.incident_edges(vertex))
    if not set(moved) <= incident:
        raise ValueError("moved edges must be incident to the vertex")
    if len(set(moved)) != len(moved):
        raise ValueError("duplicate edges in moved set")
    new = diagram.add_vertex(diagram.vtype(vertex), 0.0)
    for e in moved:
        u, v, t = diagram.edge_info(e)
        if u == v:
            raise ValueError("cannot move a self-loop")
        other = v if u == vertex else u
        diagram.remove_edge(e)
        diagram.add_edge(new, other, t)
    diagram.add_edge(vertex, new, EdgeType.SIMPLE)
    return new


def cap_degree(diagram: Diagram, max_degree: int) -> int:
    """Unfuse until every spider has degree ≤ ``max_degree``.

    Splits the worst spider's legs into a chain (each split moves
    ``max_degree − 1`` legs onto a fresh spider, keeping one slot for the
    connecting wire).  Returns the number of splits performed.  Requires
    ``max_degree ≥ 3`` (a chain link needs 1 connector + ≥2 payload legs to
    make progress).
    """
    if max_degree < 3:
        raise ValueError("max_degree must be at least 3")
    splits = 0
    progress = True
    while progress:
        progress = False
        for v in diagram.vertices():
            if diagram.vtype(v) not in _SPIDERS:
                continue
            deg = diagram.degree(v)
            if deg <= max_degree:
                continue
            movable = [
                e
                for e in diagram.incident_edges(v)
                if diagram.edge_info(e)[0] != diagram.edge_info(e)[1]
            ]
            take = movable[: max_degree - 1]
            unfuse(diagram, v, take)
            splits += 1
            progress = True
            break
    return splits


def max_spider_degree(diagram: Diagram) -> int:
    """Largest spider degree (0 for spider-free diagrams)."""
    degs = [
        diagram.degree(v)
        for v in diagram.vertices()
        if diagram.vtype(v) in _SPIDERS
    ]
    return max(degs, default=0)
