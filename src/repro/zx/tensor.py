"""Numerical evaluation of ZX(H)-diagrams.

``diagram_tensor`` contracts a diagram to the ndarray it denotes, with open
indices ordered ``[outputs..., inputs...]`` (little-endian within each
group); ``diagram_matrix`` reshapes that to the ``2^|out| x 2^|in|`` linear
map.  This is the semantic ground truth that every rewrite rule and every
measurement-pattern derivation is verified against (up to scalar — the
library does not track global scalars, matching the paper's "∝").

Spider tensors follow Eq. (1)-(2) of the paper; Hadamard *edges* contract the
unitary H matrix; H-*boxes* use the ZH convention (entry ``param`` at
all-ones, else 1), so an arity-2 H-box with param -1 equals ``sqrt(2) H``.

The contraction is a simple greedy pairwise ``tensordot`` over shared edge
labels — diagrams in this library are verification-scale, so clarity beats
contraction-order optimization.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.linalg.gates import HADAMARD
from repro.zx.diagram import Diagram, EdgeType, VertexType


def _spider_tensor(vtype: VertexType, phase: float, param: complex, degree: int) -> np.ndarray:
    """Tensor of a single vertex with ``degree`` legs."""
    if vtype is VertexType.Z:
        t = np.zeros((2,) * degree, dtype=complex) if degree else np.zeros((), dtype=complex)
        if degree == 0:
            return np.asarray(1.0 + np.exp(1j * phase), dtype=complex)
        t[(0,) * degree] = 1.0
        t[(1,) * degree] = np.exp(1j * phase)
        return t
    if vtype is VertexType.X:
        # X spider = Z spider with H on every leg (|+>/|-> basis), Eq. (2).
        t = _spider_tensor(VertexType.Z, phase, param, degree)
        for axis in range(degree):
            t = np.tensordot(HADAMARD, t, axes=([1], [axis]))
            t = np.moveaxis(t, 0, axis)
        return t
    if vtype is VertexType.H_BOX:
        # ZH: all entries 1 except ``param`` at the all-ones position.
        if degree == 0:
            return np.asarray(param, dtype=complex)
        t = np.ones((2,) * degree, dtype=complex)
        t[(1,) * degree] = param
        return t
    raise ValueError(f"no tensor for vertex type {vtype}")


def _contract_pair(
    a: np.ndarray, la: List[str], b: np.ndarray, lb: List[str]
) -> Tuple[np.ndarray, List[str]]:
    """tensordot over all shared labels; outer product when none shared."""
    shared = [x for x in la if x in lb]
    if not shared:
        out = np.tensordot(a, b, axes=0)
        return out, la + lb
    ax_a = [la.index(x) for x in shared]
    ax_b = [lb.index(x) for x in shared]
    out = np.tensordot(a, b, axes=(ax_a, ax_b))
    rem_a = [x for i, x in enumerate(la) if i not in ax_a]
    rem_b = [x for i, x in enumerate(lb) if i not in ax_b]
    return out, rem_a + rem_b


def diagram_tensor(diagram: Diagram) -> np.ndarray:
    """Contract ``diagram`` to its tensor, axes ``[outputs..., inputs...]``."""
    diagram.validate()
    tensors: List[Tuple[np.ndarray, List[str]]] = []
    open_labels: Dict[int, str] = {}  # boundary vertex -> label

    # Each edge incidence gets a unique label; edge tensors join the two ends.
    for e in diagram.edges():
        u, v, etype = diagram.edge_info(e)
        la, lb = f"e{e}a", f"e{e}b"
        if etype is EdgeType.HADAMARD:
            tensors.append((HADAMARD.astype(complex), [la, lb]))
        else:
            tensors.append((np.eye(2, dtype=complex), [la, lb]))

    # Vertex tensors; boundaries contribute open labels instead.
    for v in diagram.vertices():
        rec = diagram.vertex(v)
        labels: List[str] = []
        for e in diagram.incident_edges(v):
            u, w, _ = diagram.edge_info(e)
            if u == w:  # self-loop: both ends belong to v
                if f"e{e}a" not in labels:
                    labels.extend([f"e{e}a", f"e{e}b"])
            else:
                labels.append(f"e{e}a" if u == v else f"e{e}b")
        if rec.vtype is VertexType.BOUNDARY:
            if len(labels) != 1:
                raise ValueError(f"boundary vertex {v} must have exactly one edge")
            open_labels[v] = labels[0]
            continue
        tensors.append((_spider_tensor(rec.vtype, rec.phase, rec.param, len(labels)), labels))

    if not tensors:
        return np.asarray(1.0, dtype=complex)

    # Greedy contraction: fold tensors into an accumulator, preferring ones
    # that share labels so intermediate rank stays bounded.
    acc, lacc = tensors[0]
    rest = tensors[1:]
    while rest:
        pick = next((i for i, (_, lb) in enumerate(rest) if set(lb) & set(lacc)), 0)
        b, lb = rest.pop(pick)
        acc, lacc = _contract_pair(acc, lacc, b, lb)

    # Order open axes: outputs little-endian first, then inputs.
    want = [open_labels[v] for v in diagram.outputs] + [
        open_labels[v] for v in diagram.inputs
    ]
    if sorted(want) != sorted(lacc):
        raise RuntimeError(
            f"contraction left labels {lacc}, expected boundary labels {want}"
        )
    perm = [lacc.index(x) for x in want]
    return np.transpose(acc, perm) if perm else acc


def diagram_matrix(diagram: Diagram) -> np.ndarray:
    """The diagram's linear map as a ``2^|out| x 2^|in|`` matrix.

    Row index is little-endian over outputs, column index little-endian over
    inputs, matching :meth:`repro.sim.StateVector.to_array`.
    """
    t = diagram_tensor(diagram)
    n_out = len(diagram.outputs)
    n_in = len(diagram.inputs)
    if t.ndim != n_out + n_in:
        raise RuntimeError("tensor rank mismatch")
    # Axes are [out_0..out_{k-1}, in_0..]; little-endian flattening needs the
    # *last* axis to vary fastest with bit 0, i.e. reverse each group.
    perm = list(reversed(range(n_out))) + [n_out + i for i in reversed(range(n_in))]
    t = np.transpose(t, perm) if perm else t
    return t.reshape(1 << n_out, 1 << n_in)
