"""Quantum circuit → ZX-diagram translation.

Every circuit translates efficiently to a ZX-diagram (Section II.A); the
converse is false in general, which is exactly why the paper's
measurement-pattern extraction needs care.  Gate translations:

- ``rz(t)`` → phase-t Z-spider on the wire (Eq. 6 up to sign convention),
- ``rx(t)`` → phase-t X-spider,
- ``h``    → Hadamard edge (pending-flag on the wire),
- ``cz``   → Z-spiders on both wires joined by an H edge (Eq. 4),
- ``cnot`` → Z-spider (control) joined to X-spider (target) by a plain wire,
- ``s/sdg/t/tdg/z`` → Z-spiders with Clifford(+T) phases, ``x`` → π X-spider,
- ``ry``  → decomposed as ``rz(π/2)·rx(t)·rz(-π/2)`` (S X S† = Y).

All semantics up to global scalar.
"""

from __future__ import annotations

import math
from typing import List

from repro.sim.circuit import Circuit, Gate
from repro.zx.diagram import Diagram, EdgeType, VertexType


class _Wire:
    """Tracks the frontier vertex of one qubit wire during translation."""

    __slots__ = ("vertex", "pending_h")

    def __init__(self, vertex: int):
        self.vertex = vertex
        self.pending_h = False


def _advance(d: Diagram, w: _Wire, vtype: VertexType, phase: float) -> int:
    """Append a spider to wire ``w``, consuming any pending Hadamard."""
    v = d.add_vertex(vtype, phase)
    etype = EdgeType.HADAMARD if w.pending_h else EdgeType.SIMPLE
    d.add_edge(w.vertex, v, etype)
    w.vertex = v
    w.pending_h = False
    return v


def circuit_to_diagram(circuit: Circuit) -> Diagram:
    """Translate ``circuit`` into a ZX-diagram (equal up to global scalar)."""
    d = Diagram()
    wires: List[_Wire] = []
    for _ in range(circuit.num_qubits):
        b = d.add_boundary("input")
        wires.append(_Wire(b))

    for gate in circuit:
        _translate_gate(d, wires, gate)

    for w in wires:
        out = d.add_boundary("output")
        etype = EdgeType.HADAMARD if w.pending_h else EdgeType.SIMPLE
        d.add_edge(w.vertex, out, etype)
    return d


def _translate_gate(d: Diagram, wires: List[_Wire], gate: Gate) -> None:
    name = gate.name
    qs = gate.qubits
    if name == "i":
        return
    if name == "h":
        wires[qs[0]].pending_h = not wires[qs[0]].pending_h
        return
    if name in ("rz", "p"):
        _advance(d, wires[qs[0]], VertexType.Z, gate.params[0])
        return
    if name == "rx":
        _advance(d, wires[qs[0]], VertexType.X, gate.params[0])
        return
    if name == "ry":
        # RY(t) = S RX(t) S† up to phase; rz(π/2) rx(t) rz(-π/2) on the wire.
        _advance(d, wires[qs[0]], VertexType.Z, -math.pi / 2)
        _advance(d, wires[qs[0]], VertexType.X, gate.params[0])
        _advance(d, wires[qs[0]], VertexType.Z, math.pi / 2)
        return
    if name == "j":
        # J(a) = H RZ(a): Z spider then a pending Hadamard.
        _advance(d, wires[qs[0]], VertexType.Z, gate.params[0])
        wires[qs[0]].pending_h = True
        return
    if name == "z":
        _advance(d, wires[qs[0]], VertexType.Z, math.pi)
        return
    if name == "x":
        _advance(d, wires[qs[0]], VertexType.X, math.pi)
        return
    if name == "y":
        _advance(d, wires[qs[0]], VertexType.Z, math.pi)
        _advance(d, wires[qs[0]], VertexType.X, math.pi)
        return
    if name == "s":
        _advance(d, wires[qs[0]], VertexType.Z, math.pi / 2)
        return
    if name == "sdg":
        _advance(d, wires[qs[0]], VertexType.Z, -math.pi / 2)
        return
    if name == "t":
        _advance(d, wires[qs[0]], VertexType.Z, math.pi / 4)
        return
    if name == "tdg":
        _advance(d, wires[qs[0]], VertexType.Z, -math.pi / 4)
        return
    if name == "cz":
        a = _advance(d, wires[qs[0]], VertexType.Z, 0.0)
        b = _advance(d, wires[qs[1]], VertexType.Z, 0.0)
        d.add_edge(a, b, EdgeType.HADAMARD)
        return
    if name == "cnot":
        c = _advance(d, wires[qs[0]], VertexType.Z, 0.0)
        t = _advance(d, wires[qs[1]], VertexType.X, 0.0)
        d.add_edge(c, t, EdgeType.SIMPLE)
        return
    if name == "swap":
        wires[qs[0]], wires[qs[1]] = wires[qs[1]], wires[qs[0]]
        return
    if name == "crz":
        # CRZ(t) = RZ(t/2) on target, CNOT, RZ(-t/2) on target, CNOT.
        _translate_gate(d, wires, Gate("rz", (qs[1],), (gate.params[0] / 2,)))
        _translate_gate(d, wires, Gate("cnot", qs))
        _translate_gate(d, wires, Gate("rz", (qs[1],), (-gate.params[0] / 2,)))
        _translate_gate(d, wires, Gate("cnot", qs))
        return
    if name == "cp":
        # CP(t) = diag(1,1,1,e^{it}) = RZ(t/2)⊗RZ(t/2) · CRZ... standard:
        t = gate.params[0]
        _translate_gate(d, wires, Gate("rz", (qs[0],), (t / 2,)))
        _translate_gate(d, wires, Gate("crz", qs, (t,)))
        return
    raise ValueError(f"gate {name!r} has no direct ZX translation here")
