"""Bit-packed batched stabilizer tableau: one GF(2) structure, many shots.

The per-shot trajectory sampler advances one Aaronson–Gottesman tableau per
shot, repeating identical O(n²) boolean sweeps ``n_shots`` times.  This
module removes the redundancy by exploiting a structural fact of compiled
Clifford measurement patterns:

**Every per-shot-divergent operation is a Pauli (or a classical bit).**
Adaptive X/Z corrections, sampled Pauli channel faults, and readout flips
are the only things that differ between trajectories — and conjugating a
Pauli row by a Pauli never changes its X/Z bits, only its sign.  Whether a
measurement outcome is random or deterministic depends only on the X/Z
bits, so the whole GF(2) structure of the tableau (and the row operations
each measurement performs) evolves *identically* across shots; trajectories
diverge purely in sign bits and recorded outcomes.

:class:`BatchedTableau` therefore stores:

- ``x``, ``z``: one shared bit-packed block of ``2n`` Pauli rows
  (``(2n, Wc)`` ``uint64`` words, column ``q`` -> word ``q >> 6``, bit
  ``q & 63``), rows ``0..n-1`` destabilizers, ``n..2n-1`` stabilizers;
- ``r``: per-shot sign bits packed along the *shot* axis
  (``(2n, Wb)`` ``uint64`` words, shot ``j`` -> word ``j >> 6``, bit
  ``j & 63``);
- ``log2_weight``: exact per-shot log-2 branch weights (each random
  measurement contributes -1; kept in the log domain so ~1000-measurement
  patterns cannot underflow).

Row operations then cost one packed-word sweep for the structure plus pure
XOR updates on the shot words: the CHP phase arithmetic
``r_dst' = ((2 r_dst + 2 r_src + g) mod 4) / 2`` collapses to
``r_dst ^ r_src ^ g2`` with ``g2 = ((Σg) mod 4) >> 1`` shared across shots
(see :func:`packed_rows_mul`), so a 64-shot block updates with one word op.
Masked per-shot gate application (:meth:`BatchedTableau.apply_pauli_masked`)
XORs a packed fire-mask into the sign words of the affected rows — the
tableau analogue of ``BatchedStateVector.apply_1q_masked``.

The scalar :class:`~repro.stab.tableau.StabilizerState` remains the
reference engine (``run``/``run_branch``/determinism checks); the
equivalence of the two is property-tested bit for bit in
``tests/test_stab_batched.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

_WORD = 64
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

try:  # numpy >= 2.0
    _bitcount = np.bitwise_count
except AttributeError:  # pragma: no cover - exercised only on old numpy
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _bitcount(a: np.ndarray) -> np.ndarray:
        by = np.ascontiguousarray(a).view(np.uint8)
        return _POP8[by].reshape(a.shape + (8,)).sum(axis=-1).astype(np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack booleans along the last axis into little-endian ``uint64`` words.

    Bit ``i`` of the packed row lands in word ``i >> 6`` at position
    ``i & 63``; the tail of the last word is zero-padded.
    """
    bits = np.asarray(bits, dtype=bool)
    n = bits.shape[-1]
    w = max(1, -(-n // _WORD))
    pad = w * _WORD - n
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=bool)], axis=-1
        )
    packed = np.packbits(bits, axis=-1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., W)`` words -> ``(..., n)`` bools."""
    by = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(by, axis=-1, bitorder="little")
    return bits[..., :n].astype(bool)


def _g_planes(
    xs: np.ndarray, zs: np.ndarray, xd: np.ndarray, zd: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Bit planes of the CHP ``g`` exponent for src row (1) times dst row (2).

    Per column, multiplying ``(x1 z1)`` by ``(x2 z2)`` picks up ``i^g`` with
    ``g ∈ {-1, 0, +1}``; the +1 columns are ``X·Y | Y·Z | Z·X`` and the -1
    columns ``X·Z | Y·X | Z·Y`` (src Pauli first).  Packed-word analogue of
    :func:`repro.stab.tableau._g_vec`.
    """
    x1 = xs & ~zs
    y1 = xs & zs
    w1 = zs & ~xs
    x2 = xd & ~zd
    y2 = xd & zd
    w2 = zd & ~xd
    pos = (x1 & y2) | (y1 & w2) | (w1 & x2)
    neg = (x1 & w2) | (y1 & x2) | (w1 & y2)
    return pos, neg


def packed_g(xs: np.ndarray, zs: np.ndarray, xd: np.ndarray, zd: np.ndarray):
    """Summed ``g`` exponent (src times dst) over packed columns.

    ``xd``/``zd`` may carry leading row axes; the column-word axis is the
    last one.  Returns an ``int64`` array (or scalar) of ``Σ_col g``.
    """
    pos, neg = _g_planes(xs, zs, xd, zd)
    p = _bitcount(pos).sum(axis=-1, dtype=np.int64)
    n = _bitcount(neg).sum(axis=-1, dtype=np.int64)
    return p - n


def packed_g2(xs: np.ndarray, zs: np.ndarray, xd: np.ndarray, zd: np.ndarray):
    """The single phase bit ``((Σg) mod 4) >> 1`` of :func:`packed_g`.

    The CHP sign update ``r_dst' = ((2 r_dst + 2 r_src + Σg) mod 4) / 2``
    is identically ``r_dst ^ r_src ^ g2`` for *any* sign bits (write
    ``Σg mod 4 = 2c + d``; the total is ``2(r_dst + r_src + c) + d`` and
    halving mod 4 discards ``d``), which is what lets a whole block of
    per-shot signs update with two XORs.
    """
    return (packed_g(xs, zs, xd, zd) % 4) >> 1


def packed_rows_mul(
    x: np.ndarray, z: np.ndarray, r: np.ndarray, dst: int, src: int
) -> None:
    """Row ``dst`` <- ``dst * src`` on packed rows with batched sign bits.

    The packed-and-batched generalization of
    :func:`repro.stab.tableau.rows_mul`: ``x``/``z`` are ``(R, Wc)`` packed
    column words, ``r`` is ``(R, Wb)`` packed *shot* words — every shot's
    sign updates in the same two XORs because the ``g`` phase bit is a
    property of the shared X/Z bits alone.
    """
    g2 = int(packed_g2(x[src], z[src], x[dst], z[dst]))
    r[dst] ^= r[src]
    if g2:
        r[dst] ^= _ONES
    x[dst] ^= x[src]
    z[dst] ^= z[src]


class BatchedTableau:
    """``n_shots`` stabilizer tableaus over one shared bit-packed structure.

    All shots start in ``|0...0>``.  Unconditional Clifford gates update the
    shared X/Z words once and the packed sign words vectorized across shots;
    per-shot divergence enters only through :meth:`apply_pauli_masked`
    (masked sign flips), per-shot measurement outcomes, and per-shot forced
    bits — exactly the operations a compiled Clifford pattern needs.
    """

    def __init__(self, num_qubits: int, n_shots: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if n_shots < 1:
            raise ValueError("need at least one shot")
        n = num_qubits
        self.n = n
        self.n_shots = n_shots
        self.wc = -(-n // _WORD)
        self.wb = -(-n_shots // _WORD)
        self.x = np.zeros((2 * n, self.wc), dtype=np.uint64)
        self.z = np.zeros((2 * n, self.wc), dtype=np.uint64)
        self.r = np.zeros((2 * n, self.wb), dtype=np.uint64)
        self.log2_weight = np.zeros(n_shots, dtype=np.float64)
        for q in range(n):
            w, m = q >> 6, np.uint64(1 << (q & 63))
            self.x[q, w] |= m          # destabilizers X_q
            self.z[n + q, w] |= m      # stabilizers Z_q
        # Valid-shot mask: the tail bits of the last shot word are scratch.
        self.shot_mask = pack_bits(np.ones(n_shots, dtype=bool))

    # -- bit helpers ---------------------------------------------------------
    def _col(self, mat: np.ndarray, q: int) -> np.ndarray:
        """Column ``q`` of a packed block as a ``(2n,)`` bool vector."""
        return (mat[:, q >> 6] & np.uint64(1 << (q & 63))) != 0

    def _chk(self, *qs: int) -> None:
        for q in qs:
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {q} out of range")

    # -- Clifford gates ------------------------------------------------------
    def h(self, q: int) -> None:
        self._chk(q)
        w, m = q >> 6, np.uint64(1 << (q & 63))
        xb = (self.x[:, w] & m) != 0
        zb = (self.z[:, w] & m) != 0
        self.r[xb & zb] ^= _ONES
        diff = (self.x[:, w] ^ self.z[:, w]) & m
        self.x[:, w] ^= diff
        self.z[:, w] ^= diff

    def s(self, q: int) -> None:
        self._chk(q)
        w, m = q >> 6, np.uint64(1 << (q & 63))
        xb = (self.x[:, w] & m) != 0
        zb = (self.z[:, w] & m) != 0
        self.r[xb & zb] ^= _ONES
        self.z[:, w] ^= self.x[:, w] & m

    def sdg(self, q: int) -> None:
        self.s(q)
        self.z_gate(q)

    def x_gate(self, q: int) -> None:
        self._chk(q)
        self.r[self._col(self.z, q)] ^= _ONES

    def z_gate(self, q: int) -> None:
        self._chk(q)
        self.r[self._col(self.x, q)] ^= _ONES

    def y_gate(self, q: int) -> None:
        self.z_gate(q)
        self.x_gate(q)

    def cnot(self, control: int, target: int) -> None:
        self._chk(control, target)
        if control == target:
            raise ValueError("control equals target")
        wc_, mc = control >> 6, np.uint64(1 << (control & 63))
        wt, mt = target >> 6, np.uint64(1 << (target & 63))
        xc = (self.x[:, wc_] & mc) != 0
        zc = (self.z[:, wc_] & mc) != 0
        xt = (self.x[:, wt] & mt) != 0
        zt = (self.z[:, wt] & mt) != 0
        self.r[xc & zt & ~(xt ^ zc)] ^= _ONES
        self.x[:, wt] ^= np.where(xc, mt, np.uint64(0))
        self.z[:, wc_] ^= np.where(zt, mc, np.uint64(0))

    def cz(self, q0: int, q1: int) -> None:
        """CZ = (I⊗H) CNOT (I⊗H), mirroring the scalar tableau."""
        self.h(q1)
        self.cnot(q0, q1)
        self.h(q1)

    def apply_named(self, name: str, qubits: Sequence[int]) -> None:
        """Apply an unconditional Clifford gate by circuit-IR name."""
        table = {
            "h": self.h, "s": self.s, "sdg": self.sdg,
            "x": self.x_gate, "y": self.y_gate, "z": self.z_gate,
            "cnot": self.cnot, "cz": self.cz,
        }
        if name == "i":
            return
        if name not in table:
            raise ValueError(f"gate {name!r} is not Clifford-supported")
        table[name](*qubits)

    # -- masked per-shot Paulis ---------------------------------------------
    def apply_pauli_masked(self, name: str, q: int, fire: np.ndarray) -> None:
        """Apply Pauli ``name`` on column ``q`` to the shots set in ``fire``.

        ``fire`` is a ``(Wb,)`` packed shot mask (:func:`pack_bits` of the
        per-shot fire booleans).  A Pauli only flips the sign of rows it
        anticommutes with at ``q`` — the X/Z bits stay shared, which is the
        invariant the whole batched layout rests on.
        """
        self._chk(q)
        xb = self._col(self.x, q)
        zb = self._col(self.z, q)
        if name == "x":
            sel = zb                    # anticommutes with Z and Y rows
        elif name == "z":
            sel = xb                    # anticommutes with X and Y rows
        elif name == "y":
            sel = xb ^ zb               # anticommutes with X and Z rows
        else:
            raise ValueError(f"{name!r} is not a Pauli gate")
        self.r[sel] ^= fire[None, :]

    # -- pattern preparation -------------------------------------------------
    def prep_column(self, col: int, label: str) -> None:
        """Rotate the *fresh* column ``col`` from ``|0>`` into a prep state.

        Valid only while the column is untouched (its destabilizer/stabilizer
        rows still hold the solitary init bits) — exactly the situation at a
        ``PrepOp`` in the preallocated-tableau execution scheme.  Direct bit
        surgery replaces one or two full-column gate sweeps per prepared
        node (``O(1)`` words instead of ``O(n)`` row flips).
        """
        self._chk(col)
        if label not in ("plus", "minus", "zero", "one"):
            raise ValueError(f"unknown preparation state {label!r}")
        w, m = col >> 6, np.uint64(1 << (col & 63))
        d, st = col, self.n + col
        if label in ("plus", "minus"):
            self.x[d, w] &= ~m
            self.z[d, w] |= m           # destabilizer Z
            self.z[st, w] &= ~m
            self.x[st, w] |= m          # stabilizer ±X
            if label == "minus":
                self.r[st] ^= _ONES
        elif label == "one":
            self.r[st] ^= _ONES         # stabilizer -Z
        # "zero" is the init state.

    # -- measurement ---------------------------------------------------------
    def measure_z(
        self,
        q: int,
        outcome_provider=None,
        force_words: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        """Measure Z on column ``q`` for every shot at once.

        Returns ``(outcome_words, random)``: packed per-shot outcome bits
        and whether the outcome was random (shared across shots — it is a
        property of the X/Z bits alone).  For a random outcome the bits
        come from ``force_words`` if given, else from ``outcome_provider()``
        (a zero-argument callable returning packed bits, invoked only when
        randomness is actually consumed — so the vectorized sampler and the
        per-shot loop draw from the parent generator identically).  For a
        deterministic outcome the actual bits are returned and ``force``
        handling (zero-probability branches) is the caller's business.
        """
        self._chk(q)
        n = self.n
        xcol = self._col(self.x, q)
        stab_rows = np.nonzero(xcol[n:])[0]
        if stab_rows.size:
            p = int(stab_rows[0]) + n
            others = np.nonzero(xcol)[0]
            others = others[others != p]
            if others.size:
                g2 = packed_g2(self.x[p], self.z[p], self.x[others], self.z[others])
                self.r[others] ^= self.r[p][None, :]
                flip = others[g2 == 1]
                if flip.size:
                    self.r[flip] ^= _ONES
                self.x[others] ^= self.x[p][None, :]
                self.z[others] ^= self.z[p][None, :]
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = np.uint64(0)
            self.z[p] = np.uint64(0)
            self.z[p, q >> 6] = np.uint64(1 << (q & 63))
            if force_words is not None:
                out = force_words.copy()
            else:
                if outcome_provider is None:
                    raise ValueError("random outcome needs an outcome provider")
                out = np.asarray(outcome_provider(), dtype=np.uint64).copy()
            self.r[p] = out
            self.log2_weight -= 1.0
            return out, True
        # Deterministic: accumulate the stabilizer product into a scratch
        # row.  The scratch X/Z bits are shared, so the mod-4 phase sum per
        # shot reduces to an XOR over the involved sign words plus one
        # shared correction bit (see packed_g2's docstring).
        rows = np.nonzero(xcol[:n])[0]
        sx = np.zeros(self.wc, dtype=np.uint64)
        sz = np.zeros(self.wc, dtype=np.uint64)
        g_total = 0
        out = np.zeros(self.wb, dtype=np.uint64)
        for i in rows:
            srow = int(i) + n
            g_total += int(packed_g(self.x[srow], self.z[srow], sx, sz))
            sx ^= self.x[srow]
            sz ^= self.z[srow]
            out ^= self.r[srow]
        if (g_total % 4) >> 1:
            out = ~out
        return out, False

    def measure_pauli(
        self,
        q: int,
        label: str,
        outcome_provider=None,
        force_words: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, bool]:
        """Pauli measurement via the scalar engine's H/S conjugations."""
        if label == "Z":
            return self.measure_z(q, outcome_provider, force_words)
        if label == "X":
            self.h(q)
            try:
                return self.measure_z(q, outcome_provider, force_words)
            finally:
                self.h(q)
        if label == "Y":
            self.sdg(q)
            self.h(q)
            try:
                return self.measure_z(q, outcome_provider, force_words)
            finally:
                self.h(q)
                self.s(q)
        raise ValueError(f"unknown Pauli label {label!r}")

    # -- extraction ----------------------------------------------------------
    def extract_substate(
        self, cols: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Marginal-state generators on ``cols`` for *every* shot at once.

        The packed/batched port of
        :meth:`repro.stab.tableau.StabilizerState.extract_substate`: the
        Gaussian elimination runs once on the shared X/Z bits (identical
        row operations apply to every shot), with sign bits carried along
        per shot.  Returns ``(x, z, r)`` where ``x``/``z`` are
        ``(k, len(cols))`` bools shared across shots and ``r`` is
        ``(n_shots, k)`` ``int8`` sign bits.  Raises :class:`ValueError`
        when the state does not factor over ``cols``.
        """
        n = self.n
        cols = [int(c) for c in cols]
        col_set = set(cols)
        if len(col_set) != len(cols):
            raise ValueError("duplicate columns")
        for c in cols:
            if not 0 <= c < n:
                raise ValueError(f"column {c} out of range")
        other = [c for c in range(n) if c not in col_set]
        gx = self.x[n:].copy()
        gz = self.z[n:].copy()
        gr = self.r[n:].copy()
        taken = np.zeros(n, dtype=bool)
        for col in other:
            w, m = col >> 6, np.uint64(1 << (col & 63))
            for mat in (gx, gz):
                bits = (mat[:, w] & m) != 0
                cand = np.nonzero(bits & ~taken)[0]
                if cand.size == 0:
                    continue
                piv = int(cand[0])
                taken[piv] = True
                rows2 = np.nonzero(bits)[0]
                rows2 = rows2[rows2 != piv]
                if rows2.size:
                    g2 = packed_g2(gx[piv], gz[piv], gx[rows2], gz[rows2])
                    gr[rows2] ^= gr[piv][None, :]
                    flip = rows2[g2 == 1]
                    if flip.size:
                        gr[flip] ^= _ONES
                    gx[rows2] ^= gx[piv]
                    gz[rows2] ^= gz[piv]
        keep = np.nonzero(~taken)[0]
        xb = unpack_bits(gx[keep], n)
        zb = unpack_bits(gz[keep], n)
        if len(keep) != len(cols) or (
            other and (xb[:, other].any() or zb[:, other].any())
        ):
            raise ValueError("state does not factor over the requested columns")
        rbits = unpack_bits(gr[keep], self.n_shots)  # (k, n_shots)
        return (
            xb[:, cols],
            zb[:, cols],
            rbits.T.astype(np.int8),
        )

    # -- inspection (tests/cross-checks) ------------------------------------
    def to_stabilizer_state(self, shot: int):
        """Shot ``shot`` as an independent scalar :class:`StabilizerState`."""
        from repro.stab.tableau import StabilizerState

        if not 0 <= shot < self.n_shots:
            raise ValueError(f"shot {shot} out of range")
        st = StabilizerState(self.n)
        st.x = unpack_bits(self.x, self.n)
        st.z = unpack_bits(self.z, self.n)
        st.r = unpack_bits(self.r, self.n_shots)[:, shot].astype(np.int8)
        return st


def unpack_shot_bits(words: np.ndarray, n_shots: int) -> np.ndarray:
    """Packed shot words ``(Wb,)`` -> per-shot bits ``(n_shots,)`` (int8)."""
    return unpack_bits(words, n_shots).astype(np.int8)


__all__ = [
    "BatchedTableau",
    "pack_bits",
    "packed_g",
    "packed_g2",
    "packed_rows_mul",
    "unpack_bits",
    "unpack_shot_bits",
]
