"""Stabilizer (Clifford) simulation substrate.

Graph states — the MBQC resource states of Section II.B — are stabilizer
states, and the Pauli-measurement patterns (e.g. the Appendix A Bell-state
example) are entirely Clifford.  The Aaronson–Gottesman tableau simulator
here verifies those at sizes far beyond statevector reach and cross-checks
the dense simulator on random Clifford circuits.
"""

from repro.stab.tableau import StabilizerState, graph_state_stabilizers

__all__ = ["StabilizerState", "graph_state_stabilizers"]
