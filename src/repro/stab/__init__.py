"""Stabilizer (Clifford) simulation substrate.

Graph states — the MBQC resource states of Section II.B — are stabilizer
states, and the Pauli-measurement patterns (e.g. the Appendix A Bell-state
example) are entirely Clifford.  The Aaronson–Gottesman tableau simulator
here verifies those at sizes far beyond statevector reach and cross-checks
the dense simulator on random Clifford circuits.  The bit-packed
:class:`~repro.stab.batched.BatchedTableau` advances a whole block of
trajectories over one shared GF(2) structure (per-shot divergence — Pauli
corrections, faults — lives purely in packed sign bits), which is what
vectorizes the Clifford trajectory sampler.
"""

from repro.stab.batched import (
    BatchedTableau,
    pack_bits,
    packed_g,
    packed_g2,
    packed_rows_mul,
    unpack_bits,
    unpack_shot_bits,
)
from repro.stab.tableau import (
    ForcedOutcomeContradiction,
    StabilizerState,
    apply_pauli_string,
    canonical_stabilizer_key,
    graph_state_stabilizers,
    stab_rows_to_paulis,
    statevector_from_generators,
)

__all__ = [
    "BatchedTableau",
    "ForcedOutcomeContradiction",
    "StabilizerState",
    "apply_pauli_string",
    "canonical_stabilizer_key",
    "graph_state_stabilizers",
    "pack_bits",
    "packed_g",
    "packed_g2",
    "packed_rows_mul",
    "stab_rows_to_paulis",
    "statevector_from_generators",
    "unpack_bits",
    "unpack_shot_bits",
]
