"""Stabilizer (Clifford) simulation substrate.

Graph states — the MBQC resource states of Section II.B — are stabilizer
states, and the Pauli-measurement patterns (e.g. the Appendix A Bell-state
example) are entirely Clifford.  The Aaronson–Gottesman tableau simulator
here verifies those at sizes far beyond statevector reach and cross-checks
the dense simulator on random Clifford circuits.
"""

from repro.stab.tableau import (
    ForcedOutcomeContradiction,
    StabilizerState,
    apply_pauli_string,
    canonical_stabilizer_key,
    graph_state_stabilizers,
    stab_rows_to_paulis,
    statevector_from_generators,
)

__all__ = [
    "ForcedOutcomeContradiction",
    "StabilizerState",
    "apply_pauli_string",
    "canonical_stabilizer_key",
    "graph_state_stabilizers",
    "stab_rows_to_paulis",
    "statevector_from_generators",
]
