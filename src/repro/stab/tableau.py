"""Aaronson–Gottesman CHP tableau simulator.

State of ``n`` qubits is tracked by ``2n`` Pauli rows: rows ``0..n-1`` are
destabilizers, rows ``n..2n-1`` stabilizers.  Row ``i`` stores X/Z bits in
packed boolean numpy arrays; phases in ``r`` (0 -> +1, 1 -> -1).  All row
operations are vectorized across the ``n`` columns per the hpc guides.

Reference: S. Aaronson, D. Gottesman, "Improved simulation of stabilizer
circuits", PRA 70, 052328 (2004).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.paulis import PauliString
from repro.utils.rng import SeedLike, ensure_rng


class ForcedOutcomeContradiction(ValueError):
    """Forcing the opposite of a deterministic measurement outcome.

    The branch being forced has probability zero; branch-enumerating
    callers (e.g. the stabilizer pattern backend) treat this as a
    zero-weight branch rather than an error.
    """


_PREP_LABELS = ("plus", "minus", "zero", "one")


def _g_vec(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> int:
    """Summed exponent-of-i contribution when multiplying Pauli rows.

    Vectorized version of the CHP ``g`` function: for each column, g in
    {-1, 0, +1} is the power of i picked up multiplying (x1 z1) by (x2 z2).
    """
    # Cases: (x1,z1) = I: 0 ; X: z2*(2*x2-1) ; Y: z2-x2 ; Z: x2*(1-2*z2)
    x1i, z1i = x1.astype(np.int64), z1.astype(np.int64)
    x2i, z2i = x2.astype(np.int64), z2.astype(np.int64)
    gx = x1i * (1 - z1i) * (z2i * (2 * x2i - 1))     # row1 = X
    gy = x1i * z1i * (z2i - x2i)                     # row1 = Y
    gz = (1 - x1i) * z1i * (x2i * (1 - 2 * z2i))     # row1 = Z
    return int((gx + gy + gz).sum())


def rows_mul(x: np.ndarray, z: np.ndarray, r: np.ndarray, dst: int, src: int) -> None:
    """Row ``dst`` <- row ``dst`` * row ``src`` with CHP phase tracking.

    ``r`` holds sign bits (0 -> +1, 1 -> -1).  The single place the
    phase-tracked GF(2) row multiplication lives — the tableau's
    ``_rowsum``, membership testing, substate extraction, and canonical
    forms all delegate here so the phase convention cannot diverge.
    """
    two = 2 * int(r[dst]) + 2 * int(r[src]) + _g_vec(x[src], z[src], x[dst], z[dst])
    r[dst] = (two % 4) // 2
    x[dst] ^= x[src]
    z[dst] ^= z[src]


class StabilizerState:
    """An n-qubit stabilizer state, initialized to ``|0...0>``."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        n = num_qubits
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=np.int8)
        idx = np.arange(n)
        self.x[idx, idx] = True          # destabilizers X_i
        self.z[n + idx, idx] = True      # stabilizers Z_i

    # -- constructors --------------------------------------------------------
    @staticmethod
    def plus_state(n: int) -> "StabilizerState":
        st = StabilizerState(n)
        for q in range(n):
            st.h(q)
        return st

    @staticmethod
    def graph_state(n: int, edges: Sequence[Tuple[int, int]]) -> "StabilizerState":
        """``prod CZ_{uv} |+>^n`` — Eq. (5) of the paper."""
        st = StabilizerState.plus_state(n)
        for u, v in edges:
            st.cz(u, v)
        return st

    # -- Clifford gates --------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard: swap X/Z columns, phase picks up x&z."""
        self._chk(q)
        xq = self.x[:, q].copy()
        zq = self.z[:, q].copy()
        self.r ^= (xq & zq).astype(np.int8)
        self.x[:, q], self.z[:, q] = zq, xq

    def s(self, q: int) -> None:
        """Phase gate S."""
        self._chk(q)
        xq, zq = self.x[:, q], self.z[:, q]
        self.r ^= (xq & zq).astype(np.int8)
        self.z[:, q] = zq ^ xq

    def sdg(self, q: int) -> None:
        self.s(q)
        self.z_gate(q)
        # S† = Z S  (S† = S Z also works since Z commutes with S)

    def x_gate(self, q: int) -> None:
        """Pauli X (as Clifford conjugation): flips phase of rows with Z_q."""
        self._chk(q)
        self.r ^= self.z[:, q].astype(np.int8)

    def z_gate(self, q: int) -> None:
        """Pauli Z: flips phase of rows with X_q."""
        self._chk(q)
        self.r ^= self.x[:, q].astype(np.int8)

    def y_gate(self, q: int) -> None:
        self.z_gate(q)
        self.x_gate(q)

    def cnot(self, control: int, target: int) -> None:
        self._chk(control, target)
        if control == target:
            raise ValueError("control equals target")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= (xc & zt & (xt ^ zc ^ True)).astype(np.int8)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, q0: int, q1: int) -> None:
        """CZ = (I⊗H) CNOT (I⊗H)."""
        self.h(q1)
        self.cnot(q0, q1)
        self.h(q1)

    def apply_named(self, name: str, qubits: Sequence[int]) -> None:
        """Apply a Clifford gate by circuit-IR name."""
        table = {
            "h": self.h, "s": self.s, "sdg": self.sdg,
            "x": self.x_gate, "y": self.y_gate, "z": self.z_gate,
            "cnot": self.cnot, "cz": self.cz,
        }
        if name == "i":
            return
        if name not in table:
            raise ValueError(f"gate {name!r} is not Clifford-supported")
        table[name](*qubits)

    # -- register management -------------------------------------------------
    def add_qubit(self, state: str = "plus") -> int:
        """Append a fresh qubit in product state ``state``; returns its column.

        Mirrors :meth:`repro.sim.statevector.StateVector.add_qubit` for the
        four pattern preparation states, so the stabilizer pattern backend
        can map ``PrepOp`` slots onto tableau columns.
        """
        if state not in _PREP_LABELS:
            raise ValueError(f"unknown preparation state {state!r}")
        n = self.n
        x = np.zeros((2 * n + 2, n + 1), dtype=bool)
        z = np.zeros((2 * n + 2, n + 1), dtype=bool)
        r = np.zeros(2 * n + 2, dtype=np.int8)
        x[:n, :n] = self.x[:n]
        z[:n, :n] = self.z[:n]
        r[:n] = self.r[:n]
        x[n + 1 : 2 * n + 1, :n] = self.x[n:]
        z[n + 1 : 2 * n + 1, :n] = self.z[n:]
        r[n + 1 : 2 * n + 1] = self.r[n:]
        # Row n is the new destabilizer, row 2n+1 the new stabilizer.
        if state in ("zero", "one"):
            x[n, n] = True          # destabilizer X
            z[2 * n + 1, n] = True  # stabilizer ±Z
            r[2 * n + 1] = 1 if state == "one" else 0
        else:
            z[n, n] = True          # destabilizer Z
            x[2 * n + 1, n] = True  # stabilizer ±X
            r[2 * n + 1] = 1 if state == "minus" else 0
        self.n = n + 1
        self.x, self.z, self.r = x, z, r
        return n

    # -- internals ---------------------------------------------------------
    def _chk(self, *qs: int) -> None:
        for q in qs:
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {q} out of range")

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i with correct phase (vectorized)."""
        rows_mul(self.x, self.z, self.r, h, i)

    # -- measurement ---------------------------------------------------------
    def _measure_z_info(
        self, q: int, rng: SeedLike = None, force: Optional[int] = None
    ) -> Tuple[int, float]:
        """Measure Z on ``q``; returns ``(outcome, probability)``.

        The probability is exactly 0.5 for a random outcome and 1.0 for a
        deterministic one; forcing against a deterministic outcome raises
        :class:`ForcedOutcomeContradiction` (that branch has weight zero).
        """
        self._chk(q)
        n = self.n
        rows_p = np.nonzero(self.x[n:, q])[0]
        if rows_p.size:
            # Random outcome.
            p = int(rows_p[0]) + n
            for i in list(np.nonzero(self.x[:, q])[0]):
                if i != p:
                    self._rowsum(int(i), p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            if force is not None:
                outcome = int(force)
            elif callable(rng):
                # A zero-argument draw source (e.g. the pattern backend's
                # shared per-shot table) — invoked only when randomness is
                # actually consumed, so vectorized and per-shot samplers
                # stay on the identical generator stream.
                outcome = int(rng())
            else:
                outcome = int(ensure_rng(rng).integers(2))
            self.r[p] = outcome
            return outcome, 0.5
        # Deterministic outcome: accumulate into scratch row.
        sx = np.zeros(self.n, dtype=bool)
        sz = np.zeros(self.n, dtype=bool)
        two_r = 0
        for i in np.nonzero(self.x[:n, q])[0]:
            s = int(i) + n
            two_r += 2 * int(self.r[s]) + _g_vec(self.x[s], self.z[s], sx, sz)
            sx ^= self.x[s]
            sz ^= self.z[s]
        outcome = (two_r % 4) // 2
        if force is not None and force != outcome:
            raise ForcedOutcomeContradiction(
                "forced outcome contradicts deterministic measurement"
            )
        return outcome, 1.0

    def measure_z(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        """Measure Z on qubit ``q``; returns the outcome bit.

        Deterministic outcomes ignore ``force`` mismatches by raising, so
        branch enumeration stays honest.
        """
        return self._measure_z_info(q, rng=rng, force=force)[0]

    def measure_x(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        # try/finally: a ForcedOutcomeContradiction from the inner Z
        # measurement must not leave the tableau H-conjugated.
        self.h(q)
        try:
            out = self.measure_z(q, rng=rng, force=force)
        finally:
            self.h(q)
        return out

    def measure_y(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        self.sdg(q)
        try:
            out = self.measure_x(q, rng=rng, force=force)
        finally:
            self.s(q)
        return out

    def measure_pauli(self, q: int, label: str, rng: SeedLike = None, force: Optional[int] = None) -> int:
        return {"X": self.measure_x, "Y": self.measure_y, "Z": self.measure_z}[label](q, rng=rng, force=force)

    def measure_pauli_info(
        self, q: int, label: str, rng: SeedLike = None, force: Optional[int] = None
    ) -> Tuple[int, float]:
        """Pauli measurement reporting its probability: ``(outcome, p)``.

        ``p`` is 0.5 when the outcome was random, 1.0 when deterministic.
        Forcing against a deterministic outcome raises
        :class:`ForcedOutcomeContradiction` with the tableau left intact —
        the pattern backend maps this to a zero-weight branch.
        """
        if label == "Z":
            return self._measure_z_info(q, rng=rng, force=force)
        if label == "X":
            self.h(q)
            try:
                return self._measure_z_info(q, rng=rng, force=force)
            finally:
                self.h(q)
        if label == "Y":
            self.sdg(q)
            self.h(q)
            try:
                return self._measure_z_info(q, rng=rng, force=force)
            finally:
                self.h(q)
                self.s(q)
        raise ValueError(f"unknown Pauli label {label!r}")

    # -- inspection ---------------------------------------------------------
    def stabilizer_rows(self) -> List[PauliString]:
        """The n stabilizer generators as :class:`PauliString` objects."""
        return stab_rows_to_paulis(self.x[self.n:], self.z[self.n:], self.r[self.n:])

    def stabilizes(self, pauli: PauliString) -> bool:
        """True iff ``pauli`` is in the stabilizer group (with its phase).

        Works by Gaussian elimination over GF(2) on the generator tableau.
        """
        # Build target bits.
        tx = np.zeros(self.n, dtype=bool)
        tz = np.zeros(self.n, dtype=bool)
        for q, p in pauli.ops.items():
            if q >= self.n:
                raise ValueError("qubit out of range")
            if p in ("X", "Y"):
                tx[q] = True
            if p in ("Z", "Y"):
                tz[q] = True
        # Accumulate a product of generators matching the X/Z bit pattern.
        gx = self.x[self.n:].copy()
        gz = self.z[self.n:].copy()
        gr = self.r[self.n:].copy().astype(np.int64)
        sx = np.zeros(self.n, dtype=bool)
        sz = np.zeros(self.n, dtype=bool)
        two_r = 0
        # Eliminate column by column (X part then Z part).
        rows = list(range(self.n))
        # Forward elimination to row-echelon over the symplectic bits.
        pivots: List[Tuple[int, Tuple[str, int]]] = []
        taken = np.zeros(self.n, dtype=bool)
        for kind, mat in (("x", gx), ("z", gz)):
            for col in range(self.n):
                cand = [r for r in rows if not taken[r] and mat[r, col]]
                if not cand:
                    continue
                piv = cand[0]
                taken[piv] = True
                pivots.append((piv, (kind, col)))
                for r in rows:
                    if r != piv and mat[r, col]:
                        rows_mul(gx, gz, gr, r, piv)
        # Now express target in terms of pivot rows greedily.
        for piv, (kind, col) in pivots:
            bit = tx[col] if kind == "x" else tz[col]
            # Current accumulated value at that pivot position:
            cur = sx[col] if kind == "x" else sz[col]
            if bit != cur:
                two_r += 2 * int(gr[piv]) + _g_vec(gx[piv], gz[piv], sx, sz)
                sx ^= gx[piv]
                sz ^= gz[piv]
        if not (np.array_equal(sx, tx) and np.array_equal(sz, tz)):
            return False
        sign = -1 if (two_r % 4) // 2 else 1
        want = 1 if pauli.phase == 1 else (-1 if pauli.phase == -1 else None)
        if want is None:
            return False  # Hermitian stabilizers have real phase
        return sign == want

    def to_statevector(self) -> np.ndarray:
        """Dense statevector (little-endian), for cross-checks at small n.

        Projects ``|0...0>``-seeded maximally mixed basis onto the stabilizer
        group by averaging projectors; implemented as repeated projector
        application ``(I + g)/2`` on a random state to stay simple.
        """
        return statevector_from_generators(self.stabilizer_rows(), self.n)

    def extract_substate(
        self, cols: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stabilizer generators of the marginal pure state on ``cols``.

        Requires the state to factor as (pure state on ``cols``) ⊗ (rest) —
        true once every column outside ``cols`` has been projectively
        measured, which is how the pattern backend leaves measured nodes.
        Returns ``(x, z, r)`` with ``len(cols)`` generator rows, columns
        reordered to ``cols`` order, and phase bits ``r`` (0 → +1, 1 → -1).
        Raises :class:`ValueError` if the split is entangled.
        """
        n = self.n
        cols = [int(c) for c in cols]
        col_set = set(cols)
        if len(col_set) != len(cols):
            raise ValueError("duplicate columns")
        for c in cols:
            if not 0 <= c < n:
                raise ValueError(f"column {c} out of range")
        other = [c for c in range(n) if c not in col_set]
        gx = self.x[n:].copy()
        gz = self.z[n:].copy()
        gr = self.r[n:].astype(np.int64).copy()
        taken = np.zeros(n, dtype=bool)
        # Eliminate support on the non-kept columns: one pivot row per
        # (column, X/Z) bit, consumed rows are dropped from the output.
        for col in other:
            for mat in (gx, gz):
                cand = np.nonzero(mat[:, col] & ~taken)[0]
                if cand.size == 0:
                    continue
                piv = int(cand[0])
                taken[piv] = True
                for row in np.nonzero(mat[:, col])[0]:
                    row = int(row)
                    if row != piv:
                        rows_mul(gx, gz, gr, row, piv)
        keep = np.nonzero(~taken)[0]
        if len(keep) != len(cols) or (
            other and (gx[np.ix_(keep, other)].any() or gz[np.ix_(keep, other)].any())
        ):
            raise ValueError("state does not factor over the requested columns")
        return (
            gx[np.ix_(keep, cols)],
            gz[np.ix_(keep, cols)],
            (gr[keep] % 2).astype(np.int8),
        )


def canonical_stabilizer_key(
    x: np.ndarray, z: np.ndarray, r: np.ndarray
) -> bytes:
    """Hashable canonical form of a stabilizer generator set.

    Two generator sets describe the same stabilizer state iff their keys are
    equal: the rows are brought to the unique phase-tracked reduced
    row-echelon form over GF(2) (X block first, then Z block) and packed.
    Used to compare outcome branches without densifying.
    """
    x = x.copy()
    z = z.copy()
    r = np.asarray(r, dtype=np.int64).copy()
    k, m = x.shape
    row = 0
    for kind in ("x", "z"):
        mat = x if kind == "x" else z
        for col in range(m):
            if row >= k:
                break
            cand = np.nonzero(mat[row:, col])[0]
            if cand.size == 0:
                continue
            piv = row + int(cand[0])
            if piv != row:
                for arr in (x, z):
                    arr[[row, piv]] = arr[[piv, row]]
                r[[row, piv]] = r[[piv, row]]
            for other in np.nonzero(mat[:, col])[0]:
                other = int(other)
                if other != row:
                    rows_mul(x, z, r, other, row)
            row += 1
    bits = np.concatenate([x.ravel(), z.ravel(), (r % 2).astype(bool)])
    return np.packbits(bits).tobytes() + k.to_bytes(4, "little") + m.to_bytes(4, "little")


def stab_rows_to_paulis(
    x: np.ndarray, z: np.ndarray, r: np.ndarray
) -> List[PauliString]:
    """Generator rows (as packed bits) to :class:`PauliString` objects."""
    out = []
    for i in range(x.shape[0]):
        ops: Dict[int, str] = {}
        for q in range(x.shape[1]):
            xb, zb = bool(x[i, q]), bool(z[i, q])
            if xb and zb:
                ops[q] = "Y"
            elif xb:
                ops[q] = "X"
            elif zb:
                ops[q] = "Z"
        out.append(PauliString(ops, -1 if r[i] else 1))
    return out


def apply_pauli_string(pauli: PauliString, vec: np.ndarray, n: int) -> np.ndarray:
    """``P|vec>`` without materializing the ``2^n x 2^n`` matrix.

    A Pauli string maps basis state ``|j>`` to ``phase(j) |j XOR xmask>``
    with ``phase(j) = i^{#Y} · (-1)^{popcount(j AND zmask)}`` — one index
    permutation plus a sign vector, ``O(n·2^n)`` instead of ``O(4^n)``.
    """
    xmask = 0
    zmask = 0
    n_y = 0
    for q, p in pauli.ops.items():
        if q >= n:
            raise ValueError("qubit index out of range")
        if p in ("X", "Y"):
            xmask |= 1 << q
        if p in ("Z", "Y"):
            zmask |= 1 << q
        if p == "Y":
            n_y += 1
    src = np.arange(1 << n) ^ xmask  # (P vec)[k] = phase(src_k) vec[src_k]
    parity = np.zeros(1 << n, dtype=np.int8)
    for q in range(n):
        if (zmask >> q) & 1:
            parity ^= ((src >> q) & 1).astype(np.int8)
    phase = complex(pauli.phase) * (1j ** (n_y % 4))
    signs = np.where(parity, -phase, phase)
    return signs * vec[src]


def statevector_from_generators(
    gens: Sequence[PauliString], n: int, seed: SeedLike = 12345
) -> np.ndarray:
    """Dense unit statevector stabilized by ``gens`` (little-endian).

    Projector-product construction (``(I + g)/2`` per generator, applied
    matrix-free via :func:`apply_pauli_string`); ``n`` is capped at 20
    because the vector itself is ``2^n`` amplitudes.  ``seed`` randomizes
    the pre-projection vector; the fixed default keeps extraction
    bit-reproducible (any seed yields the same state up to global phase).
    """
    if n > 20:
        raise ValueError("dense extraction is for small n only")
    if n == 0:
        return np.ones(1, dtype=complex)
    rng = ensure_rng(seed)
    vec = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    for g in gens:
        vec = (vec + apply_pauli_string(g, vec, n)) / 2.0
    nrm = np.linalg.norm(vec)
    if nrm < 1e-9:
        # Unlucky random seed component; retry deterministically.
        vec = np.ones(1 << n, dtype=complex)
        for g in gens:
            vec = (vec + apply_pauli_string(g, vec, n)) / 2.0
        nrm = np.linalg.norm(vec)
        if nrm < 1e-9:
            raise RuntimeError("failed to extract statevector")
    return vec / nrm


def graph_state_stabilizers(n: int, edges: Sequence[Tuple[int, int]]) -> List[PauliString]:
    """Canonical graph-state generators ``K_v = X_v prod_{w~v} Z_w``."""
    adj: Dict[int, List[int]] = {v: [] for v in range(n)}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    gens = []
    for v in range(n):
        ops = {v: "X"}
        for w in adj[v]:
            ops[w] = "Z"
        gens.append(PauliString(ops, 1))
    return gens
