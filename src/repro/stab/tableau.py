"""Aaronson–Gottesman CHP tableau simulator.

State of ``n`` qubits is tracked by ``2n`` Pauli rows: rows ``0..n-1`` are
destabilizers, rows ``n..2n-1`` stabilizers.  Row ``i`` stores X/Z bits in
packed boolean numpy arrays; phases in ``r`` (0 -> +1, 1 -> -1).  All row
operations are vectorized across the ``n`` columns per the hpc guides.

Reference: S. Aaronson, D. Gottesman, "Improved simulation of stabilizer
circuits", PRA 70, 052328 (2004).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.paulis import PauliString
from repro.utils.rng import SeedLike, ensure_rng


def _g_vec(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> int:
    """Summed exponent-of-i contribution when multiplying Pauli rows.

    Vectorized version of the CHP ``g`` function: for each column, g in
    {-1, 0, +1} is the power of i picked up multiplying (x1 z1) by (x2 z2).
    """
    # Cases: (x1,z1) = I: 0 ; X: z2*(2*x2-1) ; Y: z2-x2 ; Z: x2*(1-2*z2)
    x1i, z1i = x1.astype(np.int64), z1.astype(np.int64)
    x2i, z2i = x2.astype(np.int64), z2.astype(np.int64)
    gx = x1i * (1 - z1i) * (z2i * (2 * x2i - 1))     # row1 = X
    gy = x1i * z1i * (z2i - x2i)                     # row1 = Y
    gz = (1 - x1i) * z1i * (x2i * (1 - 2 * z2i))     # row1 = Z
    return int((gx + gy + gz).sum())


class StabilizerState:
    """An n-qubit stabilizer state, initialized to ``|0...0>``."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        n = num_qubits
        self.n = n
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=np.int8)
        idx = np.arange(n)
        self.x[idx, idx] = True          # destabilizers X_i
        self.z[n + idx, idx] = True      # stabilizers Z_i

    # -- constructors --------------------------------------------------------
    @staticmethod
    def plus_state(n: int) -> "StabilizerState":
        st = StabilizerState(n)
        for q in range(n):
            st.h(q)
        return st

    @staticmethod
    def graph_state(n: int, edges: Sequence[Tuple[int, int]]) -> "StabilizerState":
        """``prod CZ_{uv} |+>^n`` — Eq. (5) of the paper."""
        st = StabilizerState.plus_state(n)
        for u, v in edges:
            st.cz(u, v)
        return st

    # -- Clifford gates --------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard: swap X/Z columns, phase picks up x&z."""
        self._chk(q)
        xq = self.x[:, q].copy()
        zq = self.z[:, q].copy()
        self.r ^= (xq & zq).astype(np.int8)
        self.x[:, q], self.z[:, q] = zq, xq

    def s(self, q: int) -> None:
        """Phase gate S."""
        self._chk(q)
        xq, zq = self.x[:, q], self.z[:, q]
        self.r ^= (xq & zq).astype(np.int8)
        self.z[:, q] = zq ^ xq

    def sdg(self, q: int) -> None:
        self.s(q)
        self.z_gate(q)
        # S† = Z S  (S† = S Z also works since Z commutes with S)

    def x_gate(self, q: int) -> None:
        """Pauli X (as Clifford conjugation): flips phase of rows with Z_q."""
        self._chk(q)
        self.r ^= self.z[:, q].astype(np.int8)

    def z_gate(self, q: int) -> None:
        """Pauli Z: flips phase of rows with X_q."""
        self._chk(q)
        self.r ^= self.x[:, q].astype(np.int8)

    def y_gate(self, q: int) -> None:
        self.z_gate(q)
        self.x_gate(q)

    def cnot(self, control: int, target: int) -> None:
        self._chk(control, target)
        if control == target:
            raise ValueError("control equals target")
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= (xc & zt & (xt ^ zc ^ True)).astype(np.int8)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def cz(self, q0: int, q1: int) -> None:
        """CZ = (I⊗H) CNOT (I⊗H)."""
        self.h(q1)
        self.cnot(q0, q1)
        self.h(q1)

    def apply_named(self, name: str, qubits: Sequence[int]) -> None:
        """Apply a Clifford gate by circuit-IR name."""
        table = {
            "h": self.h, "s": self.s, "sdg": self.sdg,
            "x": self.x_gate, "y": self.y_gate, "z": self.z_gate,
            "cnot": self.cnot, "cz": self.cz,
        }
        if name == "i":
            return
        if name not in table:
            raise ValueError(f"gate {name!r} is not Clifford-supported")
        table[name](*qubits)

    # -- internals ---------------------------------------------------------
    def _chk(self, *qs: int) -> None:
        for q in qs:
            if not 0 <= q < self.n:
                raise ValueError(f"qubit {q} out of range")

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i with correct phase (vectorized)."""
        two_r = 2 * int(self.r[h]) + 2 * int(self.r[i])
        two_r += _g_vec(self.x[i], self.z[i], self.x[h], self.z[h])
        self.r[h] = (two_r % 4) // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    # -- measurement ---------------------------------------------------------
    def measure_z(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        """Measure Z on qubit ``q``; returns the outcome bit.

        Deterministic outcomes ignore ``force`` mismatches by raising, so
        branch enumeration stays honest.
        """
        self._chk(q)
        n = self.n
        rows_p = np.nonzero(self.x[n:, q])[0]
        if rows_p.size:
            # Random outcome.
            p = int(rows_p[0]) + n
            for i in list(np.nonzero(self.x[:, q])[0]):
                if i != p:
                    self._rowsum(int(i), p)
            self.x[p - n] = self.x[p].copy()
            self.z[p - n] = self.z[p].copy()
            self.r[p - n] = self.r[p]
            self.x[p] = False
            self.z[p] = False
            self.z[p, q] = True
            outcome = int(ensure_rng(rng).integers(2)) if force is None else int(force)
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: accumulate into scratch row.
        sx = np.zeros(self.n, dtype=bool)
        sz = np.zeros(self.n, dtype=bool)
        two_r = 0
        for i in np.nonzero(self.x[:n, q])[0]:
            s = int(i) + n
            two_r += 2 * int(self.r[s]) + _g_vec(self.x[s], self.z[s], sx, sz)
            sx ^= self.x[s]
            sz ^= self.z[s]
        outcome = (two_r % 4) // 2
        if force is not None and force != outcome:
            raise ValueError("forced outcome contradicts deterministic measurement")
        return outcome

    def measure_x(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        self.h(q)
        out = self.measure_z(q, rng=rng, force=force)
        self.h(q)
        return out

    def measure_y(self, q: int, rng: SeedLike = None, force: Optional[int] = None) -> int:
        self.sdg(q)
        out = self.measure_x(q, rng=rng, force=force)
        self.s(q)
        return out

    def measure_pauli(self, q: int, label: str, rng: SeedLike = None, force: Optional[int] = None) -> int:
        return {"X": self.measure_x, "Y": self.measure_y, "Z": self.measure_z}[label](q, rng=rng, force=force)

    # -- inspection ---------------------------------------------------------
    def stabilizer_rows(self) -> List[PauliString]:
        """The n stabilizer generators as :class:`PauliString` objects."""
        out = []
        for i in range(self.n, 2 * self.n):
            ops: Dict[int, str] = {}
            for q in range(self.n):
                xb, zb = bool(self.x[i, q]), bool(self.z[i, q])
                if xb and zb:
                    ops[q] = "Y"
                elif xb:
                    ops[q] = "X"
                elif zb:
                    ops[q] = "Z"
            out.append(PauliString(ops, -1 if self.r[i] else 1))
        return out

    def stabilizes(self, pauli: PauliString) -> bool:
        """True iff ``pauli`` is in the stabilizer group (with its phase).

        Works by Gaussian elimination over GF(2) on the generator tableau.
        """
        # Build target bits.
        tx = np.zeros(self.n, dtype=bool)
        tz = np.zeros(self.n, dtype=bool)
        for q, p in pauli.ops.items():
            if q >= self.n:
                raise ValueError("qubit out of range")
            if p in ("X", "Y"):
                tx[q] = True
            if p in ("Z", "Y"):
                tz[q] = True
        # Accumulate a product of generators matching the X/Z bit pattern.
        gx = self.x[self.n:].copy()
        gz = self.z[self.n:].copy()
        gr = self.r[self.n:].copy().astype(np.int64)
        used = np.zeros(self.n, dtype=bool)
        sx = np.zeros(self.n, dtype=bool)
        sz = np.zeros(self.n, dtype=bool)
        two_r = 0
        # Eliminate column by column (X part then Z part).
        row_of_pivot: Dict[Tuple[str, int], int] = {}
        rows = list(range(self.n))
        # Forward elimination to row-echelon over the symplectic bits.
        pivots: List[Tuple[int, Tuple[str, int]]] = []
        taken = np.zeros(self.n, dtype=bool)
        for kind, mat in (("x", gx), ("z", gz)):
            for col in range(self.n):
                cand = [r for r in rows if not taken[r] and mat[r, col]]
                if not cand:
                    continue
                piv = cand[0]
                taken[piv] = True
                pivots.append((piv, (kind, col)))
                for r in rows:
                    if r != piv and mat[r, col]:
                        # row r *= row piv, phases tracked mod 4
                        two = 2 * gr[r] + 2 * gr[piv] + _g_vec(gx[piv], gz[piv], gx[r], gz[r])
                        gr[r] = (two % 4) // 2
                        gx[r] ^= gx[piv]
                        gz[r] ^= gz[piv]
        # Now express target in terms of pivot rows greedily.
        for piv, (kind, col) in pivots:
            bit = tx[col] if kind == "x" else tz[col]
            # Current accumulated value at that pivot position:
            cur = sx[col] if kind == "x" else sz[col]
            if bit != cur:
                two_r += 2 * int(gr[piv]) + _g_vec(gx[piv], gz[piv], sx, sz)
                sx ^= gx[piv]
                sz ^= gz[piv]
        if not (np.array_equal(sx, tx) and np.array_equal(sz, tz)):
            return False
        sign = -1 if (two_r % 4) // 2 else 1
        want = 1 if pauli.phase == 1 else (-1 if pauli.phase == -1 else None)
        if want is None:
            return False  # Hermitian stabilizers have real phase
        return sign == want

    def to_statevector(self) -> np.ndarray:
        """Dense statevector (little-endian), for cross-checks at small n.

        Projects ``|0...0>``-seeded maximally mixed basis onto the stabilizer
        group by averaging projectors; implemented as repeated projector
        application ``(I + g)/2`` on a random state to stay simple.
        """
        n = self.n
        if n > 12:
            raise ValueError("to_statevector is for small n only")
        vec = np.zeros(1 << n, dtype=complex)
        rng = np.random.default_rng(12345)
        vec = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        for g in self.stabilizer_rows():
            mat = g.to_matrix(n)
            vec = (vec + mat @ vec) / 2.0
        nrm = np.linalg.norm(vec)
        if nrm < 1e-9:
            # Unlucky random seed component; retry deterministically.
            vec = np.ones(1 << n, dtype=complex)
            for g in self.stabilizer_rows():
                mat = g.to_matrix(n)
                vec = (vec + mat @ vec) / 2.0
            nrm = np.linalg.norm(vec)
            if nrm < 1e-9:
                raise RuntimeError("failed to extract statevector")
        return vec / nrm


def graph_state_stabilizers(n: int, edges: Sequence[Tuple[int, int]]) -> List[PauliString]:
    """Canonical graph-state generators ``K_v = X_v prod_{w~v} Z_w``."""
    adj: Dict[int, List[int]] = {v: [] for v in range(n)}
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    gens = []
    for v in range(n):
        ops = {v: "X"}
        for w in adj[v]:
            ops[w] = "Z"
        gens.append(PauliString(ops, 1))
    return gens
