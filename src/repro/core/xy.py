"""XY mixers in the MBQC paradigm (Section V).

The paper: "the operators ``e^{iβX_uX_v}`` and ``e^{iβY_uY_v}`` can be
derived and implemented in a measurement-based paradigm in particular by
adapting the results for the ``e^{iβZ_uZ_v}`` operators of Section III."
That is exactly what we do: the XX factor is the Eq. (8) edge gadget
conjugated by Hadamards (``J(0)`` gadgets on both wires), and the YY factor
is the XX block conjugated by ``S`` (Eq. (10) hanging gadgets, one ancilla
each).  ``compile_xy_qaoa_pattern`` assembles full QAOA with ring-XY
partial mixers for one-hot encodings (graph coloring, Max-k-Cut).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Union

from repro.core.gadgets import WireTracker
from repro.mbqc.pattern import Pattern
from repro.problems.qubo import QUBO, IsingModel


def _xx_block(tracker: WireTracker, u: int, v: int, beta: float) -> None:
    """``e^{iβ X_u X_v}`` = (H⊗H)·e^{iβZZ}·(H⊗H)."""
    tracker.j_gadget(u, 0.0)
    tracker.j_gadget(v, 0.0)
    tracker.edge_gadget(u, v, 2.0 * beta)
    tracker.j_gadget(u, 0.0)
    tracker.j_gadget(v, 0.0)


def _yy_block(tracker: WireTracker, u: int, v: int, beta: float) -> None:
    """``e^{iβ Y_u Y_v}`` = (S⊗S)·e^{iβXX}·(S†⊗S†).

    The hanging gadget implements ``RZ(−θ)``; ``S† ∝ RZ(−π/2)`` is
    ``hanging(π/2)`` and ``S ∝ RZ(π/2)`` is ``hanging(−π/2)``.
    """
    tracker.hanging_rz_gadget(u, math.pi / 2)   # S†
    tracker.hanging_rz_gadget(v, math.pi / 2)
    _xx_block(tracker, u, v, beta)
    tracker.hanging_rz_gadget(u, -math.pi / 2)  # S
    tracker.hanging_rz_gadget(v, -math.pi / 2)


def xy_partial_mixer(tracker: WireTracker, u: int, v: int, beta: float) -> None:
    """``U_uv(β) = e^{iβ(X_uX_v + Y_uY_v)} = e^{iβXX}·e^{iβYY}`` (the two
    factors commute), the Section V graph-coloring partial mixer."""
    _xx_block(tracker, u, v, beta)
    _yy_block(tracker, u, v, beta)


def xy_interaction_pattern(beta: float, open_inputs: bool = True) -> Pattern:
    """Standalone two-wire pattern for ``e^{iβ(XX+YY)}`` (experiment E11)."""
    tracker = WireTracker.begin(2, open_inputs=open_inputs)
    xy_partial_mixer(tracker, 0, 1, beta)
    return tracker.finish()


def compile_xy_qaoa_pattern(
    cost: Union[QUBO, IsingModel],
    blocks: Sequence[Sequence[int]],
    gammas: Sequence[float],
    betas: Sequence[float],
    initial_bits: Optional[Sequence[int]] = None,
) -> Pattern:
    """QAOA with ring-XY mixers as one measurement pattern (Section V).

    ``blocks`` are the one-hot qubit groups (e.g.
    :meth:`repro.problems.GraphColoring.blocks`); within each block the
    mixer applies XY interactions around the ring.  ``initial_bits`` (a
    feasible one-hot assignment) is prepared via the N-command basis
    states; phase layers compile exactly as in Section III.
    """
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    ising = cost.to_ising() if isinstance(cost, QUBO) else cost
    n = ising.num_spins

    pattern = Pattern(input_nodes=[], output_nodes=[])
    from repro.core.gadgets import Wire

    wires: Dict[int, Wire] = {}
    for w in range(n):
        bit = 0 if initial_bits is None else int(initial_bits[w])
        pattern.n(w, "one" if bit else "zero")
        wires[w] = Wire(node=w)
    tracker = WireTracker(pattern, wires, n)

    for gamma, beta in zip(gammas, betas):
        for (u, v), j in sorted(ising.couplings.items()):
            tracker.edge_gadget(u, v, -2.0 * gamma * j)
        for u, h in sorted(ising.fields.items()):
            tracker.hanging_rz_gadget(u, -2.0 * gamma * h)
        for block in blocks:
            k = len(block)
            for i in range(k):
                xy_partial_mixer(tracker, block[i], block[(i + 1) % k], beta)
    return tracker.finish(output_wires=range(n))
