"""MIS in the MBQC paradigm (Section IV).

The paper derives the partial mixer ``U_v(β) = Λ_{N(v)}(e^{iβX_v})`` in
ZH-calculus (see :mod:`repro.zx.zh` for that diagram) and notes it is "the
most important step toward the formulation of a quantum alternating
operator ansatz for MIS in the MBQC paradigm".  We complete the programme:

1. ``mis_mixer_circuit`` decomposes ``U_v(β)`` exactly into
   {X, H, RZ, CNOT} via the phase-polynomial expansion
   ``e^{iφ x_1…x_k} = Π_{∅≠T⊆S} exp(i φ (−1)^{|T|} Z_T / 2^k)``,
2. ``mis_qaoa_pattern`` compiles the full Section IV ansatz — classical
   warm-start (an independent set), single-qubit phase layers, ordered
   partial mixers — into a runnable measurement pattern via the generic
   J+CZ compiler.

Feasibility preservation (samples are always independent sets) is checked
in experiment E9.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.generic import circuit_to_pattern
from repro.mbqc.pattern import Pattern
from repro.problems.mis import MaximumIndependentSet
from repro.sim.circuit import Circuit


def multi_z_rotation(circuit: Circuit, qubits: Sequence[int], theta: float) -> Circuit:
    """Append ``exp(i theta Z_{q1}…Z_{qk})`` (CNOT ladder + RZ(−2θ))."""
    qs = list(qubits)
    if not qs:
        raise ValueError("need at least one qubit")
    for a, b in zip(qs, qs[1:]):
        circuit.cnot(a, b)
    circuit.rz(qs[-1], -2.0 * theta)
    for a, b in reversed(list(zip(qs, qs[1:]))):
        circuit.cnot(a, b)
    return circuit


def phase_on_all_ones(circuit: Circuit, qubits: Sequence[int], phi: float) -> Circuit:
    """Append ``|x> -> e^{i phi · x_1 x_2 … x_k} |x>`` on ``qubits``.

    Uses the exact Z-monomial expansion ``Π x_i = 2^{-k} Σ_T (−1)^{|T|}
    Z_T`` (the ``T=∅`` global-phase term is dropped).  ``2^k − 1``
    multi-Z rotations — exponential in the neighborhood degree, which is
    the expected price of classical non-linearity in a circuit/MBQC model
    (cf. the ZH H-box arity in Section IV).
    """
    qs = sorted(set(qubits))
    if len(qs) != len(list(qubits)):
        raise ValueError("duplicate qubits")
    k = len(qs)
    if k == 0:
        return circuit  # pure global phase
    scale = phi / (1 << k)
    # Iterate nonempty subsets T of qs.
    for mask in range(1, 1 << k):
        subset = [qs[i] for i in range(k) if (mask >> i) & 1]
        sign = -1.0 if len(subset) % 2 else 1.0
        multi_z_rotation(circuit, subset, sign * scale)
    return circuit


def mis_mixer_circuit(
    num_qubits: int, vertex: int, neighbors: Sequence[int], beta: float
) -> Circuit:
    """Exact circuit for the paper's partial mixer ``Λ_{N(v)}(e^{iβX_v})``
    (X-rotation on ``vertex`` controlled on all ``neighbors`` being 0).

    Construction: negate controls with X; ``e^{iβX} = H e^{iβZ} H`` and
    ``e^{iβZ} = e^{iβ}·diag(1, e^{−2iβ})`` splits into two all-ones phase
    polynomials (on ``C`` and on ``C∪{v}``); un-negate.
    """
    nbrs = sorted(set(neighbors))
    if vertex in nbrs:
        raise ValueError("vertex cannot neighbor itself")
    c = Circuit(num_qubits)
    for w in nbrs:
        c.x(w)
    c.h(vertex)
    if nbrs:
        phase_on_all_ones(c, nbrs, beta)
    phase_on_all_ones(c, nbrs + [vertex], -2.0 * beta)
    if not nbrs:
        # Degenerate Λ_∅(e^{iβX}) = e^{iβX}: the C-only term above was a
        # global phase e^{iβ} we skipped; nothing further needed.
        pass
    c.h(vertex)
    for w in nbrs:
        c.x(w)
    return c


def mis_qaoa_circuit(
    problem: MaximumIndependentSet,
    gammas: Sequence[float],
    betas: Sequence[float],
    warm_start: Optional[Sequence[int]] = None,
    sweeps: int = 1,
) -> Circuit:
    """Gate-model Section IV ansatz: warm-start X layer, then per layer the
    phase separator ``Π_v P(γ)_v`` (C = −Σ x_v) and ordered partial mixers."""
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    n = problem.num_vertices
    c = Circuit(n)
    if warm_start is not None:
        if len(warm_start) != n:
            raise ValueError("warm start length mismatch")
        if not problem.is_independent(warm_start):
            raise ValueError("warm start must be an independent set")
        for v, bit in enumerate(warm_start):
            if bit:
                c.x(v)
    for gamma, beta in zip(gammas, betas):
        # e^{-iγC} with C = -Σ x_v: phase e^{iγ} on each set vertex.
        for v in range(n):
            c.append("p", (v,), gamma)
        for _ in range(sweeps):
            for v in range(n):
                sub = mis_mixer_circuit(n, v, problem.neighborhood(v), beta)
                for g in sub:
                    c.gates.append(g)
    return c


def mis_qaoa_pattern(
    problem: MaximumIndependentSet,
    gammas: Sequence[float],
    betas: Sequence[float],
    warm_start: Optional[Sequence[int]] = None,
    sweeps: int = 1,
) -> Pattern:
    """The complete MBQC formulation of Section IV: the full MIS-QAOA
    circuit translated to a measurement pattern (wires start in ``|0>``,
    warm start applied as compiled X gates)."""
    circ = mis_qaoa_circuit(problem, gammas, betas, warm_start, sweeps)
    return circuit_to_pattern(circ, open_inputs=False, initial="zero")
