"""Qubit-reuse analysis (Section III.A, ref. [51]).

The paper notes that "the number of qubits required can be significantly
reduced in some cases by reusing qubits after measurement".  Under the
eager schedule, the compiled MBQC-QAOA pattern measures each ancilla as
soon as its gadget completes, so the *live* register stays near ``|V|``
regardless of depth ``p`` — while the graph-first schedule peaks at the
full ``|V| + p(|E|+2|V|+…)`` node count.  ``live_qubit_profile`` exposes
the trace behind experiment E13.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mbqc.pattern import CommandM, CommandN, Pattern


def live_qubit_profile(pattern: Pattern) -> List[int]:
    """Live-register size after each command (position 0 = before any)."""
    live = len(pattern.input_nodes)
    profile = [live]
    for cmd in pattern.commands:
        if isinstance(cmd, CommandN):
            live += 1
        elif isinstance(cmd, CommandM):
            live -= 1
        profile.append(live)
    return profile


def peak_live_qubits(pattern: Pattern) -> int:
    """Maximum simultaneous qubits — the physical register a hardware run
    (with measurement-and-reuse, [51]) actually needs."""
    return max(live_qubit_profile(pattern))


def reuse_summary(pattern: Pattern) -> Tuple[int, int, float]:
    """``(total_nodes, peak_live, saving_factor)``."""
    total = pattern.num_nodes()
    peak = peak_live_qubits(pattern)
    return total, peak, total / peak if peak else float("inf")
