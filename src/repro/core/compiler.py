"""MBQC-QAOA: the paper's main result (Section III, Eqs. 11-12).

:func:`compile_qaoa_pattern` emits, for an arbitrary QUBO/Ising cost and
arbitrary depth ``p``, a deterministic measurement pattern preparing the
QAOA state

    ``|γβ> = U_M(β_p) U_P(γ_p) … U_M(β_1) U_P(γ_1) |+>^n``

Per layer and per Ising coupling ``J_uv``: one edge ancilla (Eq. 8,
measured in the YZ plane at ``−2γJ_uv``, adaptively).  Per vertex: one
hanging ancilla for the linear field ``h_u`` when present (Eq. 10), then
the two-ancilla transverse mixer (Eq. 9, ``RX(2β) = J(2β)∘J(0)``).  All
byproducts propagate classically into later measurement domains, realizing
the deterministic measurement order

    ``…, n'_uv, n_u, n'_u, … | m'_uv, m_u, m'_u, …``

of Section III.  Scheduling options:

- ``schedule="eager"`` (default): each ancilla is prepared and entangled
  just before it's needed, so the live register stays near ``|V|`` qubits
  (the qubit-reuse regime of ref. [51], experiment E13);
- ``schedule="graph-first"``: all preparations and entanglers first — the
  literal one-way model where the *algorithm-independent resource state*
  is built upfront and then consumed by single-qubit measurements.

Both orders produce identical branch maps (standardization theorem); tests
check this explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.gadgets import WireTracker
from repro.mbqc.pattern import Pattern, standardize
from repro.problems.qubo import QUBO, IsingModel

NodeRole = Tuple[str, int, Tuple[int, ...]]  # (kind, layer, qubits)


@dataclass
class CompiledQAOA:
    """A compiled MBQC-QAOA protocol with provenance metadata.

    ``roles`` maps each node id to ``(kind, layer, qubits)`` with kind in
    ``{"wire-init", "edge-ancilla", "field-ancilla", "mixer-ancilla",
    "wire"}`` — the bookkeeping used by the resource and reuse analyses.
    """

    pattern: Pattern
    ising: IsingModel
    gammas: Tuple[float, ...]
    betas: Tuple[float, ...]
    roles: Dict[int, NodeRole]
    schedule: str
    _executable: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def p(self) -> int:
        return len(self.gammas)

    def executable(self):
        """The pattern lowered to slot-resolved ops, compiled once and
        cached (see :func:`repro.mbqc.compile.compile_pattern`)."""
        if self._executable is None:
            from repro.mbqc.compile import compile_pattern

            self._executable = compile_pattern(self.pattern)
        return self._executable

    def branch_map(self, forced_outcomes=None, backend=None):
        """The linear map of one outcome branch (default all-0), extracted
        on the batched execution engine via the cached executable."""
        from repro.mbqc.runner import pattern_to_matrix

        return pattern_to_matrix(
            self.pattern,
            forced_outcomes,
            backend=backend,
            compiled=self.executable(),
        )

    def num_nodes(self) -> int:
        return self.pattern.num_nodes()

    def num_entanglers(self) -> int:
        return len(self.pattern.entangling_edges())

    def count_role(self, kind: str) -> int:
        return sum(1 for r in self.roles.values() if r[0] == kind)


def _as_ising(problem: Union[QUBO, IsingModel]) -> IsingModel:
    if isinstance(problem, QUBO):
        return problem.to_ising()
    if isinstance(problem, IsingModel):
        return problem
    raise TypeError(f"expected QUBO or IsingModel, got {type(problem).__name__}")


def compile_qaoa_pattern(
    problem: Union[QUBO, IsingModel],
    gammas: Sequence[float],
    betas: Sequence[float],
    schedule: str = "eager",
    open_inputs: bool = False,
    include_fields: bool = True,
    linear_mode: str = "hanging",
) -> CompiledQAOA:
    """Compile QAOA_p on ``problem`` into a measurement pattern.

    Parameters
    ----------
    problem:
        QUBO (converted via :meth:`QUBO.to_ising`) or Ising cost model.
        The pattern implements ``e^{-iγ_k C}`` phase layers for
        ``C = Σ J_uv Z_u Z_v + Σ h_u Z_u`` (the Ising offset is a global
        phase) alternated with ``e^{-iβ_k Σ X}`` mixers.
    gammas, betas:
        The 2p QAOA parameters (arbitrary — the paper's arbitrary-depth,
        arbitrary-parameter claim).
    schedule:
        ``"eager"`` or ``"graph-first"`` (see module docstring).
    open_inputs:
        With ``True`` the wires are pattern inputs (the pattern then
        implements the QAOA *unitary*, used by the equivalence tests);
        default prepares ``|+>^n`` so the pattern prepares the QAOA state.
    include_fields:
        With ``False``, linear Ising terms are dropped (the paper's
        "neglecting single-qubit Z terms" MaxCut-style presentation).
    linear_mode:
        How linear terms are realized:

        - ``"hanging"`` (paper, Eq. 10/12): one extra ancilla per nonzero
          field per layer, matching the Section III.A "+1 qubit and
          entangler per vertex" accounting;
        - ``"fused"`` (this library's ablation): fold ``RZ(2γh_u)`` into
          the first mixer measurement — ``RX(2β)·RZ(2γh) = J(2β)∘J(2γh)``
          — costing *zero* extra qubits.  Undercuts the paper's
          general-QUBO bound by ``p·#fields`` qubits and entanglers
          (see ``benchmarks/bench_a01_ablations.py``).
    """
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    if schedule not in ("eager", "graph-first"):
        raise ValueError(f"unknown schedule {schedule!r}")
    if linear_mode not in ("hanging", "fused"):
        raise ValueError(f"unknown linear_mode {linear_mode!r}")
    ising = _as_ising(problem)
    n = ising.num_spins
    if n < 1:
        raise ValueError("need at least one spin")

    tracker = WireTracker.begin(n, initial="plus", open_inputs=open_inputs)
    roles: Dict[int, NodeRole] = {
        w: ("wire-init", 0, (w,)) for w in range(n)
    }

    edges = sorted(ising.couplings)
    fields = sorted(ising.fields) if include_fields else []

    for k, (gamma, beta) in enumerate(zip(gammas, betas), start=1):
        # Phase-separation layer: Eq. (8) gadget per coupling.
        for (u, v) in edges:
            j = ising.couplings[(u, v)]
            a = tracker.edge_gadget(u, v, -2.0 * gamma * j)
            roles[a] = ("edge-ancilla", k, (u, v))
        # Linear terms: Eq. (10) hanging gadget per field ("hanging"), or
        # deferred into the mixer's first J ("fused").
        if linear_mode == "hanging":
            for u in fields:
                h = ising.fields[u]
                a = tracker.hanging_rz_gadget(u, -2.0 * gamma * h)
                roles[a] = ("field-ancilla", k, (u,))
        # Mixer: Eq. (9), RX(2β) = J(2β)∘J(0) per vertex.  The two fresh
        # nodes per vertex are the paper's u', u'' ancillas.  In fused mode
        # the first J carries the field rotation: J(2β)∘J(2γh) = RX·RZ.
        for u in range(n):
            first_angle = 0.0
            if linear_mode == "fused" and u in ising.fields:
                first_angle = 2.0 * gamma * ising.fields[u]
            tracker.j_gadget(u, first_angle)
            roles[tracker.wires[u].node] = ("mixer-ancilla", k, (u,))
            tracker.j_gadget(u, 2.0 * beta)
            roles[tracker.wires[u].node] = ("mixer-ancilla", k, (u,))

    pattern = tracker.finish(output_wires=range(n))
    for w in range(n):
        out_node = pattern.output_nodes[w]
        roles.setdefault(out_node, ("wire", len(gammas), (w,)))

    if schedule == "graph-first":
        pattern = standardize(pattern)

    return CompiledQAOA(
        pattern=pattern,
        ising=ising,
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        roles=roles,
        schedule=schedule,
    )


def measurement_order(compiled: CompiledQAOA) -> List[int]:
    """The deterministic measurement order of the compiled protocol —
    the paper's ``…, n'_uv, n_u, n'_u | m'_uv, m_u, m'_u, …`` sequence."""
    return compiled.pattern.measured_nodes()
