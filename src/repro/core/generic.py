"""Generic circuit → measurement-pattern compiler (the baseline).

The paper motivates its tailored construction by noting that "general
methods to translate gate-based quantum algorithms into the MBQC model
exist [6], [10], [28], [but] they typically come with significant resource
overhead".  This module implements that general method: every single-qubit
gate is decomposed into ``J(α) = H RZ(α)`` primitives (one ancilla each)
and CZs are applied natively between wires, with byproducts tracked through
:class:`~repro.core.gadgets.WireTracker`.

Decompositions used (all verified in tests):

- ``h → J(0)``, ``rz(θ) → J(0)J(θ)``, ``rx(θ) → J(θ)J(0)``,
- ``ry(θ) → rz(π/2)·rx(θ)·rz(−π/2)`` (i.e. 4 J's after merging),
- ``s/sdg/t/tdg/z → rz`` specials, ``x → rx(π)``, ``y → rz(π)·rx(π)``,
- ``cz`` native, ``cnot = (I⊗H)·CZ·(I⊗H)``.

Comparing :func:`circuit_to_pattern` on the Fig. 2 QAOA circuit against
:func:`repro.core.compiler.compile_qaoa_pattern` quantifies the paper's
overhead claim (experiment E12).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.gadgets import WireTracker
from repro.mbqc.pattern import Pattern
from repro.sim.circuit import Circuit, Gate


def _j_angles(gate: Gate) -> List[float]:
    """J-decomposition (applied left-to-right) of a single-qubit gate."""
    name = gate.name
    if name == "i":
        return []
    if name == "h":
        return [0.0]
    if name in ("rz", "p"):
        return [gate.params[0], 0.0]   # J(0)∘J(θ) applied: J(θ) first
    if name == "rx":
        return [0.0, gate.params[0]]
    if name == "ry":
        # rz(-π/2), rx(θ), rz(π/2) -> J chains merged:
        # rz(a) = [a, 0], rx(t) = [0, t]: total [-π/2, 0, 0, t, π/2, 0]
        # adjacent J(0)J(0) pairs cancel (HH=I): [-π/2, t, π/2, 0]
        return [-math.pi / 2, gate.params[0], math.pi / 2, 0.0]
    if name == "j":
        return [gate.params[0]]
    if name == "z":
        return [math.pi, 0.0]
    if name == "x":
        return [0.0, math.pi]
    if name == "y":
        # y = z then x (up to phase): [π, 0] + [0, π] -> J(0)J(0) cancels
        return [math.pi, math.pi]
    if name == "s":
        return [math.pi / 2, 0.0]
    if name == "sdg":
        return [-math.pi / 2, 0.0]
    if name == "t":
        return [math.pi / 4, 0.0]
    if name == "tdg":
        return [-math.pi / 4, 0.0]
    raise ValueError(f"gate {name!r} has no single-qubit J-decomposition")


def circuit_to_pattern(
    circuit: Circuit,
    open_inputs: bool = True,
    initial: str = "plus",
) -> Pattern:
    """Translate ``circuit`` into a measurement pattern.

    ``open_inputs=True`` (default) yields a pattern implementing the
    circuit *unitary* on its input nodes; otherwise wires start in
    ``initial`` product states and the pattern prepares
    ``U|initial…>``.

    Supported gates: all single-qubit gates with a J-decomposition plus
    ``cz``, ``cnot``, ``swap``, ``rzz`` (via its cnot/rz expansion is not
    needed — circuits built by :func:`repro.qaoa.circuits.qaoa_circuit`
    use cnot+rz directly).  Multi-controlled gates must be decomposed
    first (see :mod:`repro.core.mis`).
    """
    tracker = WireTracker.begin(
        circuit.num_qubits, initial=initial, open_inputs=open_inputs
    )
    wire_of: List[int] = list(range(circuit.num_qubits))  # logical -> tracker wire

    for gate in circuit:
        name = gate.name
        if name == "cz":
            tracker.cz(wire_of[gate.qubits[0]], wire_of[gate.qubits[1]])
        elif name == "cnot":
            c, t = gate.qubits
            tracker.j_gadget(wire_of[t], 0.0)  # H
            tracker.cz(wire_of[c], wire_of[t])
            tracker.j_gadget(wire_of[t], 0.0)  # H
        elif name == "swap":
            q0, q1 = gate.qubits
            wire_of[q0], wire_of[q1] = wire_of[q1], wire_of[q0]
        elif len(gate.qubits) == 1:
            for alpha in _j_angles(gate):
                tracker.j_gadget(wire_of[gate.qubits[0]], alpha)
        else:
            raise ValueError(
                f"gate {name!r} is not supported by the generic compiler; "
                "decompose it into 1q + cz/cnot first"
            )

    return tracker.finish(output_wires=[wire_of[q] for q in range(circuit.num_qubits)])


def generic_pattern_counts(circuit: Circuit) -> Dict[str, int]:
    """Node/entangler counts of the generic translation (for E12)."""
    pattern = circuit_to_pattern(circuit)
    return {
        "nodes": pattern.num_nodes(),
        "entanglers": len(pattern.entangling_edges()),
        "measurements": len(pattern.measured_nodes()),
    }
