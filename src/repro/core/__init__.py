"""The paper's contribution: QAOA as a measurement-based protocol.

``repro.core`` turns QAOA on an arbitrary QUBO (Section III), on MIS with
hard constraints (Section IV), and on XY-mixer problems (Section V) into
deterministic measurement patterns:

- :mod:`~repro.core.gadgets` — the measurement gadgets of Eqs. (8)-(10)
  with classical byproduct tracking (the n→m signal propagation of
  Eqs. (11)-(12));
- :mod:`~repro.core.compiler` — :func:`compile_qaoa_pattern`, the
  arbitrary-depth MBQC-QAOA protocol;
- :mod:`~repro.core.generic` — the baseline circuit→pattern translation
  (J(α)+CZ decomposition) the paper contrasts with ("general methods ...
  typically come with significant resource overhead");
- :mod:`~repro.core.mis` / :mod:`~repro.core.xy` — Sections IV and V:
  constrained-mixer and XY-mixer patterns;
- :mod:`~repro.core.resources` — Section III.A resource estimates (bounds,
  exact counts, gate-model comparison);
- :mod:`~repro.core.reuse` — live-qubit profiles under eager measurement
  (the qubit-reuse discussion around ref. [51]);
- :mod:`~repro.core.verify` — branch-exhaustive determinism and
  equivalence checking.
"""

from repro.core.compiler import CompiledQAOA, compile_qaoa_pattern
from repro.core.gadgets import WireTracker
from repro.core.generic import circuit_to_pattern
from repro.core.mis import mis_mixer_circuit, mis_qaoa_pattern
from repro.core.resources import ResourceReport, estimate_resources, resource_table
from repro.core.reuse import live_qubit_profile, peak_live_qubits
from repro.core.verify import (
    check_pattern_determinism,
    pattern_equals_unitary,
    pattern_state_equals,
)
from repro.core.xy import xy_interaction_pattern
from repro.core.hyper import compile_pubo_qaoa_pattern, pubo_resource_counts
from repro.core.solver import MBQCQAOASolver, SolveResult

__all__ = [
    "compile_pubo_qaoa_pattern",
    "pubo_resource_counts",
    "MBQCQAOASolver",
    "SolveResult",
    "CompiledQAOA",
    "compile_qaoa_pattern",
    "WireTracker",
    "circuit_to_pattern",
    "mis_mixer_circuit",
    "mis_qaoa_pattern",
    "ResourceReport",
    "estimate_resources",
    "resource_table",
    "live_qubit_profile",
    "peak_live_qubits",
    "check_pattern_determinism",
    "pattern_equals_unitary",
    "pattern_state_equals",
    "xy_interaction_pattern",
]
