"""MBQC-QAOA for higher-order (PUBO) cost functions.

The Section III remark made concrete: the phase separator of

    ``C = Σ_T w_T Z_T``   (arbitrary-order spin polynomial)

compiles with *one ancilla per term* — the hyperedge generalization of the
Eq. (8) gadget — followed by the standard Eq. (9) mixer chain.  Resource
counts generalize the paper's bounds to

    ``N_Q ≤ p(#terms + 2|V|)``,   ``N_E ≤ p(Σ_T |T| + 2|V|)``.

Used by experiment E17 (Max-3-SAT), closing the paper's "higher-order"
claim with a runnable, branch-verified protocol.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.gadgets import WireTracker
from repro.mbqc.pattern import Pattern, standardize
from repro.problems.pubo import PUBO


def compile_pubo_qaoa_pattern(
    problem: PUBO,
    gammas: Sequence[float],
    betas: Sequence[float],
    schedule: str = "eager",
    open_inputs: bool = False,
) -> Pattern:
    """Compile QAOA_p on a PUBO cost into a measurement pattern.

    Each term ``w_T Z_T`` becomes ``e^{-iγ w_T Z_T}`` via one hyperedge
    gadget at YZ angle ``−2γw_T`` (constant terms are global phases and
    skipped).  Mixers are the Eq. (9) two-ancilla chains.
    """
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    if schedule not in ("eager", "graph-first"):
        raise ValueError(f"unknown schedule {schedule!r}")
    n = problem.num_spins
    if n < 1:
        raise ValueError("need at least one spin")
    tracker = WireTracker.begin(n, initial="plus", open_inputs=open_inputs)
    for gamma, beta in zip(gammas, betas):
        for term, weight in problem.interaction_terms():
            tracker.hyperedge_gadget(sorted(term), -2.0 * gamma * weight)
        for u in range(n):
            tracker.rx(u, 2.0 * beta)
    pattern = tracker.finish(output_wires=range(n))
    if schedule == "graph-first":
        pattern = standardize(pattern)
    return pattern


def pubo_resource_counts(problem: PUBO, p: int) -> Dict[str, int]:
    """Generalized Section III.A counts for the higher-order protocol."""
    if p < 0:
        raise ValueError("p must be non-negative")
    terms = problem.interaction_terms()
    v = problem.num_spins
    return {
        "wires": v,
        "term_ancillas": p * len(terms),
        "mixer_ancillas": 2 * p * v,
        "total_nodes": v + p * (len(terms) + 2 * v),
        "entanglers": p * (sum(len(t) for t, _ in terms) + 2 * v),
        "max_order": problem.max_order,
    }
