"""Branch-exhaustive verification of measurement patterns.

The paper's determinism requirement (Section II.B) is checked *semantically*
here: a pattern is deterministic iff every outcome branch implements the
same map up to global phase.  These helpers power the E3-E6 experiments.

Branch maps are produced by the batched execution engine
(:mod:`repro.mbqc.backend`): the pattern is compiled once
(:func:`~repro.mbqc.compile.compile_pattern`) and every branch evaluates all
``2^k`` input columns in a single vectorized sweep, so enumerating ``2^m``
branches costs ``2^m`` batched runs instead of ``2^m · 2^k`` sequential
pattern executions.  ``backend=`` accepts an engine instance, a registry
name, or ``None`` for automatic dispatch: Clifford-angle patterns beyond
dense reach route to the stabilizer-tableau engine, where
:func:`check_pattern_determinism` compares canonical stabilizer forms and
branch weights instead of densifying — graph-state and Pauli-measurement
patterns verify at dozens of measured nodes.  On the matrix-product-state
engine, truncated branch samples are stratified over future-read parity
classes (:func:`~repro.mbqc.compile.signal_liveness`) so the budget covers
distinct correction pathways instead of revisiting merged ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.linalg.compare import allclose_up_to_global_phase, proportionality_factor
from repro.mbqc.backend import PatternBackend, resolve_backend
from repro.mbqc.compile import compile_pattern
from repro.mbqc.pattern import Pattern, PatternError
from repro.mbqc.runner import pattern_to_matrix, run_pattern
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng


def _sample_branches(
    measured: List[int], max_branches: Optional[int], seed: SeedLike, keep_zero: bool
) -> List[Dict[int, int]]:
    m = len(measured)
    total = 1 << m
    if max_branches is None or total <= max_branches:
        bit_sets = range(total)
    elif m < 63:
        rng = ensure_rng(seed)
        picks = set(int(x) for x in rng.choice(total, size=max_branches, replace=False))
        if keep_zero:
            picks.add(0)
        bit_sets = sorted(picks)
    else:
        # 2^m overflows rng.choice's index type; draw branch bit-vectors
        # directly (collisions are vanishingly rare at this width).
        rng = ensure_rng(seed)
        picks = {0} if keep_zero else set()
        target = max_branches + (1 if keep_zero else 0)
        while len(picks) < target:
            bits = 0
            for word in rng.integers(0, 1 << 32, size=(m + 31) // 32, dtype=np.int64):
                bits = (bits << 32) | int(word)
            picks.add(bits & (total - 1))
        bit_sets = sorted(picks)
    return [
        {node: (bits >> i) & 1 for i, node in enumerate(measured)} for bits in bit_sets
    ]


def _parity_stratified_branches(
    compiled, max_branches: Optional[int], seed: SeedLike
) -> List[Dict[int, int]]:
    """Branch subsets stratified by the future-read parity signature.

    When ``max_branches`` truncates the ``2^m`` branch space, uniformly
    drawn subsets mostly revisit outcome records that merge to the same
    correction pathway — only outcomes some later op actually *reads*
    (:func:`~repro.mbqc.compile.signal_liveness`, the frontier-merge
    observation of the exact integrator) select different conditional
    corrections.  So the budget goes to the live bits first: their
    assignments are enumerated (or sampled, ``keep_zero`` as usual) with
    dead bits pinned to 0, and only leftover budget varies the dead bits,
    which exercise nothing but the projector choice of measurements no
    future op consults.
    """
    from repro.mbqc.compile import MeasureOp, signal_liveness

    measured = list(compiled.measured_nodes)
    m = len(measured)
    if max_branches is None or (m < 63 and (1 << m) <= max_branches):
        return _sample_branches(measured, max_branches, seed, keep_zero=True)
    lv = signal_liveness(compiled.ops)
    live = [
        op.node
        for i, op in enumerate(compiled.ops)
        if type(op) is MeasureOp and not lv.dead[i]
    ]
    dead = [n for n in measured if n not in set(live)]
    base = _sample_branches(live, max_branches, seed, keep_zero=True)
    branches = [dict(b, **{n: 0 for n in dead}) for b in base]
    if not dead:
        return branches
    rng = ensure_rng(seed)
    while len(branches) < max_branches:
        extra = dict(base[len(branches) % len(base)])
        for n in dead:
            extra[n] = int(rng.integers(0, 2))
        branches.append(extra)
    return branches


def branch_unitaries(
    pattern: Pattern,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    backend: Union[str, PatternBackend, None] = None,
    compiled=None,
) -> List[Tuple[Dict[int, int], np.ndarray]]:
    """Branch maps for all (or a random subset of) outcome branches.

    Pass ``compiled`` (from :func:`~repro.mbqc.compile.compile_pattern`) to
    skip recompilation when the caller already holds the program.
    """
    if compiled is None:
        compiled = compile_pattern(pattern)
    engine = resolve_backend(backend, compiled, dense_outputs=True)
    branches = _sample_branches(
        list(compiled.measured_nodes), max_branches, seed, keep_zero=True
    )
    return [
        (b, pattern_to_matrix(pattern, b, backend=engine, compiled=compiled))
        for b in branches
    ]


def _check_determinism_density(
    compiled, engine, branches, atol: float
) -> bool:
    """Determinism check on the density engine: compare branch *Choi
    states* — the pattern's inputs maximally entangled with spectator
    ancillas — so branch maps compare exactly, with no global-phase
    ambiguity (a density matrix carries none) and no per-column phase
    caveat (entanglement with the ancillas keeps relative input phases).

    Unreachable branches (forcing against a deterministic measurement —
    ~0 conditional probability) come back as ``None`` and are skipped,
    mirroring the stabilizer path.  Branch weights are ~``2^-m`` for ``m``
    random measurements, so they compare *relatively* — an absolute
    tolerance would be vacuous past ~27 measured nodes (cf. the log-domain
    comparison on the stabilizer path).

    All sampled branches run in one ``run_branch_choi_batch`` call — the
    cross-branch batched sweep, one batch element per outcome record —
    instead of one full Choi integration per branch.
    """
    ref: Optional[np.ndarray] = None
    ref_weight = 0.0
    for out in engine.run_branch_choi_batch(compiled, branches):
        if out is None:
            continue
        mat = out.rho.to_matrix()
        if ref is None:
            ref, ref_weight = mat, out.weight
            continue
        if abs(out.weight - ref_weight) > atol * max(ref_weight, out.weight):
            return False
        if not np.allclose(mat, ref, atol=atol):
            return False
    return ref is not None


def _check_determinism_stabilizer(
    compiled, engine, branches, atol: float, seed: SeedLike
) -> bool:
    """Determinism check without densification: compare the canonical
    stabilizer form and branch weight of every *reachable* branch.

    Zero-weight branches (a forced outcome contradicting a deterministic
    Pauli measurement) are unreachable and skipped — they carry no
    amplitude, so they cannot break determinism.  When patterns contain
    deterministic measurements, uniformly drawn branches are almost all
    unreachable; to avoid certifying determinism from a single surviving
    branch, reachable branches are then resampled from actual trajectories
    (their outcome records have positive probability by construction).
    """
    inputs = np.ones((1, 1), dtype=complex)
    ref_key: Optional[bytes] = None
    ref_weight = 0.0
    reachable = 0

    def compare(output) -> bool:
        """True iff ``output`` matches the reference (seeding it if first)."""
        nonlocal ref_key, ref_weight, reachable
        key = output.canonical_key()
        # Branch probabilities are exact powers of two; compare in the log
        # domain, where equality is exact at any size (an absolute
        # tolerance on ~2^-m weights would be vacuous past ~27 nodes).
        weight = float(output.log2_weight)
        reachable += 1
        if ref_key is None:
            ref_key, ref_weight = key, weight
            return True
        return key == ref_key and weight == ref_weight

    for branch in branches:
        try:
            run = engine.run_branch_batch(compiled, inputs, branch)
        except ZeroProbabilityBranch:
            continue
        if not compare(run.raw[0]):
            return False
    if reachable < 2 and len(branches) > 1:
        # The trajectories' own outputs are reachable branches already
        # executed — compare them directly, one per distinct outcome record.
        run = engine.sample_batch(
            compiled, len(branches), rng=ensure_rng(seed), keep_raw=True
        )
        seen = set()
        for j, output in enumerate(run.raw):
            bits = run.outcomes[j].tobytes()
            if bits in seen:
                continue
            seen.add(bits)
            if not compare(output):
                return False
    return ref_key is not None


def check_pattern_determinism(
    pattern: Pattern,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
    backend: Union[str, PatternBackend, None] = None,
    compiled=None,
) -> bool:
    """True iff all (sampled) branches give the same map up to phase.

    Branch maps of a deterministic pattern also have equal norms (uniform
    outcome probabilities); both are checked.

    On the stabilizer engine (explicit, or auto-selected for Clifford
    patterns beyond dense reach) a state-preparation pattern is checked by
    comparing canonical stabilizer forms and branch weights — no dense
    output is ever materialized, so graph-state patterns verify at sizes
    far past ``2^n`` memory.

    On the density engine (``backend="density"``) branches are compared as
    *Choi states* (inputs maximally entangled with spectator ancillas):
    exact map equality with no global-phase bookkeeping at all — the
    strictest of the three checks, for patterns within 4^n density reach.
    """
    if compiled is None:
        compiled = compile_pattern(pattern)
    engine = resolve_backend(backend, compiled)
    if engine.name == "density":
        branches = _sample_branches(
            list(compiled.measured_nodes), max_branches, seed, keep_zero=True
        )
        return _check_determinism_density(compiled, engine, branches, atol)
    if engine.name == "stabilizer":
        if pattern.input_nodes:
            raise PatternError(
                "the stabilizer determinism check needs a state-preparation "
                "pattern (no inputs): tableau columns carry no global phase, "
                "so multi-column branch maps cannot be compared exactly"
            )
        branches = _sample_branches(
            list(compiled.measured_nodes), max_branches, seed, keep_zero=True
        )
        return _check_determinism_stabilizer(compiled, engine, branches, atol, seed)
    if engine.name == "mps":
        # Dense branch-map comparison, but with the truncated branch sample
        # stratified over future-read parity classes (the PR 7 frontier
        # merge applied to branch *selection*): at hundreds of measured
        # nodes a uniform 2^m subset would almost never cover two branches
        # that differ in a correction pathway.
        branches = _parity_stratified_branches(compiled, max_branches, seed)
        try:
            maps = [
                (b, pattern_to_matrix(pattern, b, backend=engine, compiled=compiled))
                for b in branches
            ]
        except (PatternError, ZeroProbabilityBranch):
            # A forced branch with ~0 probability: a measurement is
            # deterministic, so outcome branches are not uniform.
            return False
    else:
        maps = branch_unitaries(
            pattern, max_branches=max_branches, seed=seed, backend=engine,
            compiled=compiled,
        )
    _, ref = maps[0]
    ref_norm = np.linalg.norm(ref)
    if ref_norm < 1e-12:
        return False
    for _, m in maps[1:]:
        if abs(np.linalg.norm(m) - ref_norm) > atol * max(1.0, ref_norm):
            return False
        if not allclose_up_to_global_phase(m, ref, atol=atol):
            return False
    return True


def pattern_equals_unitary(
    pattern: Pattern,
    unitary: np.ndarray,
    all_branches: bool = True,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
    backend: Union[str, PatternBackend, None] = None,
) -> bool:
    """True iff every (sampled) branch map ∝ ``unitary``.

    Dense engines only: stabilizer-extracted branch maps carry an
    independent phase per column, so a correct pattern can compare as
    non-proportional.  Automatic dispatch never picks the stabilizer
    engine for patterns with inputs for exactly this reason; avoid forcing
    ``backend="stabilizer"`` here.
    """
    if not all_branches:
        max_branches = max_branches or 1
    maps = branch_unitaries(pattern, max_branches=max_branches, seed=seed, backend=backend)
    for _, m in maps:
        if proportionality_factor(m, np.asarray(unitary, dtype=complex), atol=atol) is None:
            return False
    return True


def pattern_state_equals(
    pattern: Pattern,
    state: np.ndarray,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
) -> bool:
    """For state-preparation patterns (no inputs): every branch output
    equals ``state`` up to global phase.

    The pattern is compiled once and re-run per branch with the cached
    program (branch outputs need renormalized states, so this path uses the
    sequential runner rather than the unnormalized batched map extractor).
    """
    if pattern.input_nodes:
        raise ValueError("pattern has inputs; use pattern_equals_unitary")
    compiled = compile_pattern(pattern)
    branches = _sample_branches(
        list(compiled.measured_nodes), max_branches, seed, keep_zero=False
    )
    target = np.asarray(state, dtype=complex)
    for b in branches:
        out = run_pattern(pattern, forced_outcomes=b, compiled=compiled).state_array()
        if not allclose_up_to_global_phase(out, target, atol=atol):
            return False
    return True
