"""Branch-exhaustive verification of measurement patterns.

The paper's determinism requirement (Section II.B) is checked *semantically*
here: a pattern is deterministic iff every outcome branch implements the
same map up to global phase.  These helpers power the E3-E6 experiments.

Branch maps are produced by the batched execution engine
(:mod:`repro.mbqc.backend`): the pattern is compiled once
(:func:`~repro.mbqc.compile.compile_pattern`) and every branch evaluates all
``2^k`` input columns in a single vectorized sweep, so enumerating ``2^m``
branches costs ``2^m`` batched runs instead of ``2^m · 2^k`` sequential
pattern executions.  Pass ``backend=`` to substitute another
:class:`~repro.mbqc.backend.PatternBackend` (e.g. a future stabilizer fast
path for Clifford-angle patterns).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.linalg.compare import allclose_up_to_global_phase, proportionality_factor
from repro.mbqc.backend import PatternBackend, default_backend
from repro.mbqc.compile import compile_pattern
from repro.mbqc.pattern import Pattern
from repro.mbqc.runner import pattern_to_matrix, run_pattern
from repro.utils.rng import SeedLike, ensure_rng


def _sample_branches(
    measured: List[int], max_branches: Optional[int], seed: SeedLike, keep_zero: bool
) -> List[Dict[int, int]]:
    total = 1 << len(measured)
    if max_branches is None or total <= max_branches:
        bit_sets = range(total)
    else:
        rng = ensure_rng(seed)
        picks = set(int(x) for x in rng.choice(total, size=max_branches, replace=False))
        if keep_zero:
            picks.add(0)
        bit_sets = sorted(picks)
    return [
        {node: (bits >> i) & 1 for i, node in enumerate(measured)} for bits in bit_sets
    ]


def branch_unitaries(
    pattern: Pattern,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    backend: Optional[PatternBackend] = None,
) -> List[Tuple[Dict[int, int], np.ndarray]]:
    """Branch maps for all (or a random subset of) outcome branches."""
    compiled = compile_pattern(pattern)
    if backend is None:
        backend = default_backend()
    branches = _sample_branches(
        list(compiled.measured_nodes), max_branches, seed, keep_zero=True
    )
    return [
        (b, pattern_to_matrix(pattern, b, backend=backend, compiled=compiled))
        for b in branches
    ]


def check_pattern_determinism(
    pattern: Pattern,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
    backend: Optional[PatternBackend] = None,
) -> bool:
    """True iff all (sampled) branches give the same map up to phase.

    Branch maps of a deterministic pattern also have equal norms (uniform
    outcome probabilities); both are checked.
    """
    maps = branch_unitaries(pattern, max_branches=max_branches, seed=seed, backend=backend)
    _, ref = maps[0]
    ref_norm = np.linalg.norm(ref)
    if ref_norm < 1e-12:
        return False
    for _, m in maps[1:]:
        if abs(np.linalg.norm(m) - ref_norm) > atol * max(1.0, ref_norm):
            return False
        if not allclose_up_to_global_phase(m, ref, atol=atol):
            return False
    return True


def pattern_equals_unitary(
    pattern: Pattern,
    unitary: np.ndarray,
    all_branches: bool = True,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
    backend: Optional[PatternBackend] = None,
) -> bool:
    """True iff every (sampled) branch map ∝ ``unitary``."""
    if not all_branches:
        max_branches = max_branches or 1
    maps = branch_unitaries(pattern, max_branches=max_branches, seed=seed, backend=backend)
    for _, m in maps:
        if proportionality_factor(m, np.asarray(unitary, dtype=complex), atol=atol) is None:
            return False
    return True


def pattern_state_equals(
    pattern: Pattern,
    state: np.ndarray,
    max_branches: Optional[int] = None,
    seed: SeedLike = None,
    atol: float = 1e-8,
) -> bool:
    """For state-preparation patterns (no inputs): every branch output
    equals ``state`` up to global phase.

    The pattern is compiled once and re-run per branch with the cached
    program (branch outputs need renormalized states, so this path uses the
    sequential runner rather than the unnormalized batched map extractor).
    """
    if pattern.input_nodes:
        raise ValueError("pattern has inputs; use pattern_equals_unitary")
    compiled = compile_pattern(pattern)
    branches = _sample_branches(
        list(compiled.measured_nodes), max_branches, seed, keep_zero=False
    )
    target = np.asarray(state, dtype=complex)
    for b in branches:
        out = run_pattern(pattern, forced_outcomes=b, compiled=compiled).state_array()
        if not allclose_up_to_global_phase(out, target, atol=atol):
            return False
    return True
