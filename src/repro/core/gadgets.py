"""Measurement gadgets with classical byproduct tracking.

This module is the operational core of the paper's Section III: each QAOA
primitive becomes a small measurement fragment, and the Pauli byproducts the
measurements leave behind are tracked *classically* per logical wire and
folded into later measurement angles — which is exactly the content of
Eqs. (11)-(12): byproducts of layer ``k−1`` (the paper's ``n`` variables)
appear in the adaptive angles and corrections of layer ``k`` (the ``m``
variables), and the neighborhood parities ``P_u = Σ_{w∈N(u)\\v} n'_w``
arise automatically from the symmetric-difference updates below.

Gadget semantics (verified exhaustively in ``tests/test_core_gadgets.py``):

``j_gadget(w, α)`` — Eq. (9) building block
    New node ``a``; ``E(w,a)``; measure ``w`` in ``XY`` at ``−α``.
    Implements ``J(α) = H·RZ(α)``; the wire moves to ``a`` with byproduct
    ``X^{m_w}`` (and the old X byproduct turns into a Z on ``a`` through
    the entangler).  ``RX(β)=J(β)∘J(0)`` gives the paper's two-ancilla
    mixer with the ``(−1)^{m}β`` adaptive angle.

``edge_gadget(u, v, θ)`` — Eq. (8)
    One ancilla ``a``: ``E(u,a)``, ``E(v,a)``, measure ``a`` in the **YZ
    plane** at ``θ``.  After the CZs the ancilla holds ``H|x_u⊕x_v>``, and
    the YZ(θ) basis ``{H·RZ(θ)|±>}`` imprints the parity phase: the gadget
    implements ``exp(+i(θ/2) Z_u Z_v)`` (= ``RZZ(−θ)``) with byproduct
    ``(Z_u Z_v)^{m_a}`` — the paper's ``mπ`` spiders on *both* wires.  For
    Pauli θ the basis degenerates to ``{|0>,|1>}`` as the paper notes.

``hanging_rz_gadget(w, θ)`` — Eq. (10)
    The single-wire version of the edge gadget: one ancilla, wire does not
    move; implements ``RZ(−θ) = exp(+i(θ/2) Z)`` with byproduct
    ``Z_w^{m_a}`` — the "one additional qubit and entangling gate per
    vertex" of the general QUBO case (Section III.A).

All angle adaptivity is expressed through measurement signal domains, so
compiled patterns are runnable deterministically in a single pass — no
mid-pattern corrections required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.mbqc.pattern import Pattern


@dataclass
class Wire:
    """One logical qubit: current node plus tracked Pauli frame.

    The physical state of the node is ``X^{x} Z^{z} |ψ_ideal>`` with ``x``
    (``z``) the parity of recorded outcomes over ``x_domain``
    (``z_domain``).
    """

    node: int
    x_domain: FrozenSet[int] = frozenset()
    z_domain: FrozenSet[int] = frozenset()


class WireTracker:
    """Builds a pattern gadget-by-gadget, tracking byproducts per wire."""

    def __init__(self, pattern: Pattern, wires: Dict[int, Wire], next_node: int):
        self.pattern = pattern
        self.wires = wires
        self._next = next_node
        # Canonical node pair -> index of the CommandE emitted by cz(); node
        # ids are never reused, so a stale pair can never match again.
        self._cz_edges: Dict[Tuple[int, int], int] = {}

    @staticmethod
    def begin(
        num_wires: int, initial: str = "plus", open_inputs: bool = False
    ) -> "WireTracker":
        """Start a tracker over ``num_wires`` logical qubits.

        ``open_inputs=True`` declares the wires as pattern *inputs* (the
        pattern then implements a linear map); otherwise each wire is
        prepared via ``N`` in ``initial`` — the paper's ``|+>^n`` QAOA
        start state is the default.
        """
        pattern = Pattern(input_nodes=[], output_nodes=[])
        wires: Dict[int, Wire] = {}
        for w in range(num_wires):
            if open_inputs:
                pattern.input_nodes.append(w)
            else:
                pattern.n(w, initial)
            wires[w] = Wire(node=w)
        return WireTracker(pattern, wires, num_wires)

    def fresh_node(self) -> int:
        node = self._next
        self._next += 1
        return node

    # -- gadgets ---------------------------------------------------------------
    def j_gadget(self, wire: int, alpha: float) -> int:
        """Apply ``J(alpha) = H RZ(alpha)`` to ``wire``; returns the measured
        node (whose outcome becomes the new X byproduct)."""
        w = self.wires[wire]
        a = self.fresh_node()
        self.pattern.n(a)
        self.pattern.e(w.node, a)
        # Old X byproduct: sign-flips the measured angle (XY s-domain) and
        # propagates a Z onto the new node through the CZ.
        # Old Z byproduct: adds π (XY t-domain).
        self.pattern.m(w.node, "XY", -alpha, s_domain=w.x_domain, t_domain=w.z_domain)
        measured = w.node
        self.wires[wire] = Wire(
            node=a,
            x_domain=frozenset({measured}),
            z_domain=w.x_domain,
        )
        return measured

    def rx(self, wire: int, theta: float) -> Tuple[int, int]:
        """``RX(theta) = J(theta)∘J(0)`` — the paper's Eq. (9) mixer gadget
        (two ancillas; the second measurement angle carries ``(−1)^m``
        adaptivity through its s-domain)."""
        m1 = self.j_gadget(wire, 0.0)
        m2 = self.j_gadget(wire, theta)
        return m1, m2

    def rz_chain(self, wire: int, theta: float) -> Tuple[int, int]:
        """``RZ(theta) = J(0)∘J(theta)`` — two-ancilla Z rotation (used by
        the generic compiler; the QAOA compiler prefers the one-ancilla
        :meth:`hanging_rz_gadget`)."""
        m1 = self.j_gadget(wire, theta)
        m2 = self.j_gadget(wire, 0.0)
        return m1, m2

    def hanging_rz_gadget(self, wire: int, theta: float) -> int:
        """Eq. (10): ``RZ(−theta) = exp(+i(theta/2) Z)`` via one ancilla
        hanging off the wire."""
        w = self.wires[wire]
        a = self.fresh_node()
        self.pattern.n(a)
        self.pattern.e(w.node, a)
        # The wire's X byproduct crosses the CZ as a Z on the ancilla,
        # which in the YZ plane is a *sign* flip (s-domain).  Wire Z
        # byproducts commute with the diagonal gadget.
        self.pattern.m(a, "YZ", theta, s_domain=w.x_domain)
        self.wires[wire] = Wire(
            node=w.node,
            x_domain=w.x_domain,
            z_domain=w.z_domain ^ frozenset({a}),
        )
        return a

    def edge_gadget(self, wire_u: int, wire_v: int, theta: float) -> int:
        """Eq. (8): ``exp(i(θ/2) Z_u Z_v)`` via one ancilla per edge."""
        if wire_u == wire_v:
            raise ValueError("edge gadget needs two distinct wires")
        wu = self.wires[wire_u]
        wv = self.wires[wire_v]
        a = self.fresh_node()
        self.pattern.n(a)
        self.pattern.e(wu.node, a)
        self.pattern.e(wv.node, a)
        # X byproducts of *both* wires land on the ancilla as Z's: the
        # sign domain is their symmetric difference — the parity bookkeeping
        # that becomes P_u in Eq. (11) when gadgets stack.
        self.pattern.m(a, "YZ", theta, s_domain=wu.x_domain ^ wv.x_domain)
        self.wires[wire_u] = Wire(wu.node, wu.x_domain, wu.z_domain ^ frozenset({a}))
        self.wires[wire_v] = Wire(wv.node, wv.x_domain, wv.z_domain ^ frozenset({a}))
        return a

    def hyperedge_gadget(self, wires: Sequence[int], theta: float) -> int:
        """Higher-order phase gadget: ``exp(i(θ/2)·Z_{w1}···Z_{wk})``-style
        parity phase via a single ancilla CZ'd to ``k`` wires.

        The paper (Section III): "it is straightforward to extend our
        constructions here to QAOA for higher-order problems beyond
        quadratic" — this is that extension.  After the CZs the ancilla
        holds ``H|x1⊕…⊕xk>``; the YZ(θ) measurement imprints
        ``exp(−iθ·parity)`` (∝ ``exp(+i(θ/2)·ΠZ)``) with byproduct
        ``(Z_{w1}···Z_{wk})^m``.  For k=1 this is the hanging-RZ gadget,
        for k=2 the Eq. (8) edge gadget.
        """
        ws = list(wires)
        if len(set(ws)) != len(ws) or not ws:
            raise ValueError("hyperedge needs a nonempty set of distinct wires")
        recs = [self.wires[w] for w in ws]
        a = self.fresh_node()
        self.pattern.n(a)
        for rec in recs:
            self.pattern.e(rec.node, a)
        s_dom: FrozenSet[int] = frozenset()
        for rec in recs:
            s_dom = s_dom ^ rec.x_domain
        self.pattern.m(a, "YZ", theta, s_domain=s_dom)
        for w, rec in zip(ws, recs):
            self.wires[w] = Wire(rec.node, rec.x_domain, rec.z_domain ^ frozenset({a}))
        return a

    def cz(self, wire_u: int, wire_v: int) -> None:
        """Native CZ between two wires (generic compiler): byproduct
        bookkeeping ``CZ·X_u = X_u Z_v·CZ``.

        CZ is involutive, so a second CZ on the same (still live) node pair
        *cancels* the earlier entangler instead of duplicating it.  Node ids
        are never reused and the tracker only emits N/E/M commands
        mid-pattern — all of which commute with an entangler on two distinct
        live nodes — so removing the matching ``E`` is exact.  Without this,
        graph-based consumers that model edges as a set (flow finding,
        circuit extraction) silently read ``CZ·CZ = I`` as a single CZ.
        """
        wu = self.wires[wire_u]
        wv = self.wires[wire_v]
        pair = (wu.node, wv.node) if wu.node < wv.node else (wv.node, wu.node)
        idx = self._cz_edges.pop(pair, None)
        if idx is not None:
            del self.pattern.commands[idx]
            for key, j in self._cz_edges.items():
                if j > idx:
                    self._cz_edges[key] = j - 1
        else:
            self._cz_edges[pair] = len(self.pattern.commands)
            self.pattern.e(*pair)
        self.wires[wire_u] = Wire(wu.node, wu.x_domain, wu.z_domain ^ wv.x_domain)
        self.wires[wire_v] = Wire(wv.node, wv.x_domain, wv.z_domain ^ wu.x_domain)

    def pauli_x(self, wire: int) -> None:
        """Track an unconditional X (flip the frame with an always-on
        virtual signal is not expressible; instead emit a real X at
        finish).  We keep a parity toggle via a reserved pseudo-domain."""
        raise NotImplementedError(
            "unconditional Paulis should be folded into rotation angles"
        )

    # -- finishing ---------------------------------------------------------------
    def finish(self, output_wires: Optional[Iterable[int]] = None) -> Pattern:
        """Emit corrections for the residual byproducts and close the
        pattern with the given wires (default: all, in index order) as
        outputs."""
        wires = list(output_wires) if output_wires is not None else sorted(self.wires)
        for w in wires:
            rec = self.wires[w]
            if rec.z_domain:
                self.pattern.z(rec.node, rec.z_domain)
            if rec.x_domain:
                self.pattern.x(rec.node, rec.x_domain)
        self.pattern.output_nodes = [self.wires[w].node for w in wires]
        self.pattern.validate()
        return self.pattern
