"""End-to-end measurement-based QAOA solver.

The paper's full workflow (Sections II.C + III): prepare the QAOA state —
*as a measurement pattern* — measure in the computational basis, estimate
``<C>`` from samples, optionally update the 2p parameters, and return the
best solution found.  Nothing in the variational loop touches the
gate-model simulator: every sample comes from executing the compiled
pattern with its adaptive measurements (optionally under a
:class:`~repro.mbqc.noise.NoiseModel`, giving a noisy-hardware rehearsal).

All ``runs_per_batch`` pattern executions of one parameter evaluation run
as a single batched-trajectory sweep on the pattern-execution backend
(:meth:`~repro.mbqc.backend.PatternBackend.sample_batch`): the pattern is
compiled once and the fresh executions — each realizing its own random
outcome branch, its own adaptive corrections, and (if configured) its own
Pauli fault pattern — ride one vectorized block instead of a Python shot
loop (benchmarked in ``benchmarks/bench_e20_stabilizer_backend.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import optimize as spopt

from repro.core.compiler import compile_qaoa_pattern
from repro.mbqc.backend import PatternBackend, resolve_backend
from repro.mbqc.compile import lower_noise
from repro.mbqc.noise import NoiseModel
from repro.problems.qubo import QUBO, IsingModel
from repro.utils.bits import int_to_bitstring
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class SampleBatch:
    """Samples from one parameter setting."""

    bitstrings: np.ndarray  # integer-encoded, little-endian
    costs: np.ndarray

    def expectation(self) -> float:
        return float(self.costs.mean())

    def best(self) -> Tuple[int, float]:
        i = int(np.argmin(self.costs))
        return int(self.bitstrings[i]), float(self.costs[i])


@dataclass
class SolveResult:
    """Outcome of the variational loop."""

    best_bitstring: Tuple[int, ...]
    best_cost: float
    gammas: List[float]
    betas: List[float]
    expectation: float
    evaluations: int


class MBQCQAOASolver:
    """Variational QAOA executed entirely through measurement patterns.

    Parameters
    ----------
    problem:
        QUBO or Ising cost model (Ising offsets included in reported costs).
    p:
        QAOA depth.
    shots:
        Computational-basis samples per parameter evaluation.
    runs_per_batch:
        Fresh pattern executions per batch.  Each execution realizes a
        random outcome branch; determinism makes the output state identical
        across branches, so several samples may share one execution —
        ``runs_per_batch < shots`` amortizes simulation cost, while
        ``runs_per_batch = shots`` is the fully honest one-shot-per-run
        protocol.
    noise:
        Optional Pauli noise model applied during pattern execution.
    backend:
        Pattern-execution engine for the batched trajectory sweep: a
        registry name (``"auto"``/``"statevector"``/``"stabilizer"``), an
        engine instance, or ``None`` for automatic dispatch.
    """

    def __init__(
        self,
        problem: Union[QUBO, IsingModel],
        p: int = 1,
        shots: int = 256,
        runs_per_batch: int = 8,
        noise: Optional[NoiseModel] = None,
        seed: SeedLike = 0,
        backend: Union[str, PatternBackend, None] = None,
    ) -> None:
        if p < 1:
            raise ValueError("p must be at least 1")
        if shots < 1 or runs_per_batch < 1:
            raise ValueError("shots and runs_per_batch must be positive")
        self.qubo = problem if isinstance(problem, QUBO) else problem.to_qubo()
        self.ising = self.qubo.to_ising()
        self.p = p
        self.shots = shots
        self.runs_per_batch = min(runs_per_batch, shots)
        self.noise = noise
        self.backend = backend
        self.rng = ensure_rng(seed)
        self.evaluations = 0
        self._cost_vector = self.qubo.cost_vector()

    # -- sampling ------------------------------------------------------------
    def sample(self, gammas: Sequence[float], betas: Sequence[float]) -> SampleBatch:
        """Compile for (γ, β), execute, and sample ``shots`` solutions.

        The ``runs_per_batch`` fresh executions run as one batched sweep
        through :meth:`PatternBackend.sample_batch` — the pattern is
        compiled once and every trajectory draws its own outcomes, its own
        corrections, and (under ``noise``) its own Pauli faults.
        """
        compiled = compile_qaoa_pattern(self.ising, gammas, betas)
        # Lower the noise program *before* resolving the engine: automatic
        # dispatch inspects the lowered channels (non-Pauli ones route to
        # the density engine, which no trajectory backend can replace).
        program = lower_noise(compiled.executable(), self.noise)
        engine = resolve_backend(self.backend, program, dense_outputs=True)
        # keep_raw: the resampling step below reads per-trajectory output
        # distributions, so the engine must retain its per-shot outputs.
        run = engine.sample_batch(
            program, self.runs_per_batch, self.rng, keep_raw=True
        )
        # Resample bitstrings from the per-trajectory distributions: |ψ|²
        # rows on pure-state engines, exact density diagonals on the
        # density engine (whose noisy trajectory outputs are mixed and
        # have no state vector).
        arr = run.sample_bitstrings(self.shots, self.rng)
        self.evaluations += 1
        return SampleBatch(arr, self._cost_vector[arr])

    def expectation(self, gammas: Sequence[float], betas: Sequence[float]) -> float:
        return self.sample(gammas, betas).expectation()

    def exact_expectation(
        self, gammas: Sequence[float], betas: Sequence[float]
    ) -> float:
        """Exact noisy ``<C>`` — no sampling anywhere.

        The compiled pattern (with the solver's noise model lowered onto
        it) is integrated on the density-matrix engine over every outcome
        branch, and the cost expectation is read off the exact output
        distribution.  The Monte-Carlo :meth:`expectation` converges to
        this value as ``shots`` and ``runs_per_batch`` grow (certified in
        benchmark E21)."""
        from repro.mbqc.backend import get_backend

        compiled = compile_qaoa_pattern(self.ising, gammas, betas)
        program = compiled.executable()
        run = get_backend("density").integrate(program, noise=self.noise)
        self.evaluations += 1
        return run.expectation_diagonal(self._cost_vector)

    # -- optimization ----------------------------------------------------------
    def solve(
        self,
        restarts: int = 3,
        maxiter: int = 40,
        initial: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
    ) -> SolveResult:
        """COBYLA over the sampled expectation; returns the best solution
        seen across *all* batches (the paper's 'best overall solution
        found is returned')."""
        p = self.p
        best_seen: Tuple[int, float] = (-1, np.inf)

        def objective(theta: np.ndarray) -> float:
            nonlocal best_seen
            batch = self.sample(theta[:p], theta[p:])
            b, c = batch.best()
            if c < best_seen[1]:
                best_seen = (b, c)
            return batch.expectation()

        starts: List[np.ndarray] = []
        if initial is not None:
            starts.append(np.concatenate([np.asarray(initial[0]), np.asarray(initial[1])]))
        for _ in range(restarts):
            starts.append(
                np.concatenate(
                    [self.rng.uniform(-np.pi, np.pi, p), self.rng.uniform(-np.pi / 2, np.pi / 2, p)]
                )
            )

        best_res: Optional[spopt.OptimizeResult] = None
        for x0 in starts:
            res = spopt.minimize(
                objective, x0, method="COBYLA", options={"maxiter": maxiter, "rhobeg": 0.4}
            )
            if best_res is None or res.fun < best_res.fun:
                best_res = res
        assert best_res is not None
        theta = best_res.x
        n = self.qubo.num_variables
        return SolveResult(
            best_bitstring=int_to_bitstring(best_seen[0], n) if best_seen[0] >= 0 else (0,) * n,
            best_cost=best_seen[1],
            gammas=list(theta[:p]),
            betas=list(theta[p:]),
            expectation=float(best_res.fun),
            evaluations=self.evaluations,
        )
