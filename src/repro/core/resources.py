"""Section III.A resource estimates — bounds, exact counts, comparison.

The paper's bounds (ancillas per layer, no qubit reuse):

    ``N_Q ≤ p(|E| + 2|V|)``      graph-state qubits beyond the |V| wires,
    ``N_E ≤ p(2|E| + 2|V|)``     entangling CZs (graph-state edges),

plus one qubit and one entangler per vertex per layer for the general QUBO
case (nonzero linear terms).  The gate-model baseline is ``|V|`` logical
qubits and ``2p|E|`` entangling gates ([50]).  ``estimate_resources``
reports the paper bounds side by side with the *exact* counts of a compiled
pattern; ``resource_table`` regenerates the Section III.A comparison across
graph families (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.compiler import CompiledQAOA, compile_qaoa_pattern
from repro.problems.qubo import QUBO, IsingModel


@dataclass
class ResourceReport:
    """Resource accounting for one MBQC-QAOA instance."""

    num_vertices: int
    num_edges: int
    num_fields: int
    p: int
    # Paper bounds (Section III.A), ancilla-counting convention:
    bound_ancilla_qubits: int
    bound_entanglers: int
    # Exact counts from the compiled pattern (including the |V| wires):
    total_nodes: int
    total_entanglers: int
    measured_nodes: int
    # Gate-model baseline:
    gate_model_qubits: int
    gate_model_entanglers: int

    def as_row(self) -> Dict[str, Union[int, str]]:
        return {
            "V": self.num_vertices,
            "E": self.num_edges,
            "p": self.p,
            "NQ_bound": self.bound_ancilla_qubits,
            "NQ_exact": self.total_nodes,
            "NE_bound": self.bound_entanglers,
            "NE_exact": self.total_entanglers,
            "gate_qubits": self.gate_model_qubits,
            "gate_entanglers": self.gate_model_entanglers,
        }


def paper_bounds(
    num_vertices: int, num_edges: int, p: int, num_fields: int = 0
) -> Tuple[int, int]:
    """``(N_Q, N_E)`` upper bounds from Section III.A.

    ``N_Q`` counts ancillas added per layer (the paper's convention);
    the general-QUBO correction adds ``p·num_fields`` to both.
    """
    nq = p * (num_edges + 2 * num_vertices) + p * num_fields
    ne = p * (2 * num_edges + 2 * num_vertices) + p * num_fields
    return nq, ne


def estimate_resources(
    problem: Union[QUBO, IsingModel, CompiledQAOA],
    p: Optional[int] = None,
) -> ResourceReport:
    """Resource report for ``problem`` at depth ``p``.

    Accepts an already-compiled protocol (exact counts read off directly)
    or a problem plus ``p`` (compiled with placeholder parameters — the
    resource structure is parameter-independent, one of the paper's selling
    points: the same resource state serves any (γ, β)).
    """
    if isinstance(problem, CompiledQAOA):
        compiled = problem
    else:
        if p is None:
            raise ValueError("p is required when passing a problem")
        compiled = compile_qaoa_pattern(problem, [0.1] * p, [0.1] * p)
    ising = compiled.ising
    v = ising.num_spins
    e = len(ising.couplings)
    lin = len(ising.fields)
    depth = compiled.p
    nq_bound, ne_bound = paper_bounds(v, e, depth, lin)
    return ResourceReport(
        num_vertices=v,
        num_edges=e,
        num_fields=lin,
        p=depth,
        bound_ancilla_qubits=nq_bound,
        bound_entanglers=ne_bound,
        total_nodes=compiled.num_nodes(),
        total_entanglers=compiled.num_entanglers(),
        measured_nodes=len(compiled.pattern.measured_nodes()),
        gate_model_qubits=v,
        gate_model_entanglers=2 * depth * e,
    )


def resource_table(
    instances: Sequence[Tuple[str, Union[QUBO, IsingModel]]],
    depths: Sequence[int],
) -> List[Dict[str, Union[int, str]]]:
    """Rows of the Section III.A comparison across instances × depths."""
    rows: List[Dict[str, Union[int, str]]] = []
    for name, problem in instances:
        for p in depths:
            rep = estimate_resources(problem, p=p)
            row = rep.as_row()
            row["instance"] = name
            rows.append(row)
    return rows


def format_table(rows: Sequence[Dict[str, Union[int, str]]]) -> str:
    """Plain-text table (the benchmark harness prints this)."""
    if not rows:
        return "(empty)"
    cols = ["instance"] + [c for c in rows[0] if c != "instance"]
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows)) for c in cols}
    header = "  ".join(str(c).rjust(widths[c]) for c in cols)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append("  ".join(str(r.get(c, "")).rjust(widths[c]) for c in cols))
    return "\n".join(lines)
