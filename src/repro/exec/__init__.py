"""Resilient execution supervision (``repro.exec``).

The survival layer over the four pattern engines and the sharded exact
integrator: checkpointed shot-block jobs with crash-exact resume
(:mod:`~repro.exec.checkpoint`), supervised shard pools with timeout /
retry / re-split / in-process recovery (:mod:`~repro.exec.supervisor`),
declarative backend degradation chains (:mod:`~repro.exec.degrade`), and
the deterministic fault-injection harness that certifies every recovery
path bit-for-bit (:mod:`~repro.exec.faults`).  Recovery actions surface
as stable diagnostics R103 (shard timeout), R104 (worker death), and
R105 (backend fallback) — see :mod:`repro.analysis.diagnostics`.
"""

from repro.exec.checkpoint import (
    BlockPlan,
    CheckpointResult,
    CHECKPOINT_FORMAT_VERSION,
    DEFAULT_BLOCK_SHOTS,
    atomic_write_bytes,
    block_path,
    job_fingerprint,
    job_status,
    load_block,
    load_manifest,
    plan_blocks,
    records_digest,
    run_checkpointed,
    write_block,
)
from repro.exec.degrade import (
    ChainLinkCheck,
    ChainValidation,
    DegradationEvent,
    DegradationReport,
    FallbackPolicy,
    sample_with_fallback,
    select_backend_with_fallback,
    validate_fallback_chain,
)
from repro.exec.faults import (
    Fault,
    FaultEvent,
    FaultSchedule,
    InjectedCrash,
    corrupt_block_file,
)
from repro.exec.supervisor import (
    SupervisedDensityRun,
    SupervisionReport,
    supervised_integrate,
)

__all__ = [
    "BlockPlan",
    "CheckpointResult",
    "CHECKPOINT_FORMAT_VERSION",
    "DEFAULT_BLOCK_SHOTS",
    "atomic_write_bytes",
    "block_path",
    "job_fingerprint",
    "job_status",
    "load_block",
    "load_manifest",
    "plan_blocks",
    "records_digest",
    "run_checkpointed",
    "write_block",
    "ChainLinkCheck",
    "ChainValidation",
    "DegradationEvent",
    "DegradationReport",
    "FallbackPolicy",
    "sample_with_fallback",
    "select_backend_with_fallback",
    "validate_fallback_chain",
    "Fault",
    "FaultEvent",
    "FaultSchedule",
    "InjectedCrash",
    "corrupt_block_file",
    "SupervisedDensityRun",
    "SupervisionReport",
    "supervised_integrate",
]
