"""Deterministic fault injection for the execution supervisor.

A :class:`FaultSchedule` is a declarative list of :class:`Fault` points —
*this* kind of failure, at *this* site, on *this* attempt — that the
checkpointed shot-block executor (:mod:`repro.exec.checkpoint`) and the
shard supervisor (:mod:`repro.exec.supervisor`) consult at every
supervised step.  Because the schedule is data (no clocks, no entropy of
its own), a faulted run is exactly reproducible: the certification suite
(``tests/test_exec_faults.py``) replays the same schedule against the
same seed and asserts the recovered records are bit-identical to the
fault-free run.

Supported fault kinds:

``crash``
    In-process stand-in for sudden process death: raises
    :class:`InjectedCrash` at a block boundary (the checkpoint runner
    never catches it — resume happens in the *next* invocation), or
    ``os._exit`` inside a shard worker (surfacing to the parent as
    ``BrokenProcessPool``).
``sigkill``
    Real process death: ``SIGKILL`` to the current process at a block
    boundary.  Used by the resume-after-kill subprocess smoke test.
``memory``
    Raises :class:`MemoryError` (the OOM-path stand-in) at the injection
    point — retryable by supervision.
``timeout``
    Sleeps ``seconds`` inside a shard worker so the parent's
    ``shard_timeout`` fires (diagnostic R103).
``truncate`` / ``bitflip`` / ``version``
    Corrupts the checkpoint block file that was just persisted (torn
    write, flipped payload bit, format-version skew) — exercising the
    integrity checks that make a resumed job re-run the block instead of
    silently merging garbage.

Each fault fires **once** (its natural semantics — a crashed attempt is
gone); schedules listing several faults at the same site model repeated
failures across retries.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.utils.rng import SeedLike, ensure_rng

#: Fault kinds that corrupt an on-disk checkpoint block file.
FILE_FAULT_KINDS = ("truncate", "bitflip", "version")

#: Every kind a schedule may carry.
FAULT_KINDS = ("crash", "sigkill", "memory", "timeout") + FILE_FAULT_KINDS


class InjectedCrash(RuntimeError):
    """In-process stand-in for sudden process death.

    Deliberately *not* caught by the checkpoint runner's block retry: a
    real crash takes the process with it, so recovery must happen in a
    fresh invocation (which is exactly what the resume path certifies)."""


@dataclass(frozen=True)
class Fault:
    """One injection point: ``kind`` at ``(site, index)`` on ``attempt``.

    ``site`` names the supervised step ("block" — before a checkpoint
    block executes; "block-file" — after its file is persisted; "shard" —
    inside a shard worker).  ``index`` is the block/shard index,
    ``attempt`` the retry ordinal the fault targets (0 = first try).
    ``seconds`` parameterizes ``timeout`` faults."""

    kind: str
    site: str
    index: int
    attempt: int = 0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )


class FaultSchedule:
    """A deterministic, replayable set of :class:`Fault` points.

    ``take(site, index, attempt)`` returns the first not-yet-fired fault
    matching the step, marking it fired; ``fired`` records the order of
    delivery so tests can assert the schedule was fully consumed."""

    def __init__(self, faults: Sequence[Fault] = ()):
        self._faults: List[Fault] = list(faults)
        self._spent: List[bool] = [False] * len(self._faults)
        self.fired: List[Fault] = []

    def __len__(self) -> int:
        return len(self._faults)

    @property
    def pending(self) -> Tuple[Fault, ...]:
        """Faults not yet delivered."""
        return tuple(
            f for f, spent in zip(self._faults, self._spent) if not spent
        )

    def take(self, site: str, index: int, attempt: int) -> Optional[Fault]:
        """The fault scheduled for this step, consumed — or ``None``."""
        for k, fault in enumerate(self._faults):
            if self._spent[k]:
                continue
            if (
                fault.site == site
                and fault.index == index
                and fault.attempt == attempt
            ):
                self._spent[k] = True
                self.fired.append(fault)
                return fault
        return None

    @classmethod
    def seeded(
        cls,
        seed: SeedLike,
        n_faults: int,
        *,
        site: str = "block",
        max_index: int = 8,
        kinds: Sequence[str] = ("crash", "memory"),
        max_attempt: int = 1,
    ) -> "FaultSchedule":
        """A reproducible random schedule: ``n_faults`` points drawn from
        a seeded stream over ``kinds`` × ``[0, max_index)`` ×
        ``[0, max_attempt]`` — the stress-job constructor (same seed, same
        schedule, on every machine)."""
        rng = ensure_rng(seed)
        n = int(n_faults)
        kind_idx = rng.integers(len(kinds), size=n)
        indices = rng.integers(max_index, size=n)
        attempts = rng.integers(max_attempt + 1, size=n)
        return cls(
            [
                Fault(
                    kind=kinds[int(kind_idx[j])],
                    site=site,
                    index=int(indices[j]),
                    attempt=int(attempts[j]),
                )
                for j in range(n)
            ]
        )


@dataclass
class FaultEvent:
    """One delivered or observed fault, as recorded by a supervisor
    (``fault`` is ``None`` for organically observed failures — e.g. a
    real ``MemoryError`` rather than an injected one)."""

    fault: Optional[Fault]
    message: str = ""
    recovered: bool = True
    extra: dict = field(default_factory=dict)


def raise_in_process(fault: Fault) -> None:
    """Deliver an in-process fault kind at a block boundary."""
    if fault.kind == "crash":
        raise InjectedCrash(
            f"injected crash at {fault.site} {fault.index} "
            f"(attempt {fault.attempt})"
        )
    if fault.kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)  # never returns
    if fault.kind == "memory":
        raise MemoryError(
            f"injected MemoryError at {fault.site} {fault.index} "
            f"(attempt {fault.attempt})"
        )
    if fault.kind == "timeout":
        time.sleep(fault.seconds)
        return
    raise ValueError(
        f"fault kind {fault.kind!r} cannot be delivered in-process at "
        f"site {fault.site!r}"
    )


def apply_worker_fault(descriptor: Optional[Tuple[str, float]]) -> None:
    """Deliver a fault inside a shard worker process.

    ``descriptor`` is plain picklable data ``(kind, seconds)`` computed by
    the parent's schedule (the schedule object itself never crosses the
    process boundary): ``crash`` hard-exits the worker (the parent sees
    ``BrokenProcessPool``), ``memory`` raises (the parent sees the
    exception on the future), ``timeout`` sleeps past the parent's shard
    deadline."""
    if descriptor is None:
        return
    kind, seconds = descriptor
    if kind == "crash":
        os._exit(13)
    if kind == "memory":
        raise MemoryError("injected MemoryError in shard worker")
    if kind == "timeout":
        time.sleep(seconds)
        return
    raise ValueError(f"fault kind {kind!r} cannot run in a shard worker")


def _exit_now(*_args, **_kwargs):  # pragma: no cover - dies by design
    """Module-level crasher, picklable by qualified name: substituting it
    for a pool's worker entry simulates unconditional worker death (used
    by the ``BrokenProcessPool``-to-``PatternError`` regression test)."""
    os._exit(13)


def corrupt_block_file(path: str, mode: str) -> None:
    """Corrupt a persisted checkpoint block file in place.

    ``truncate`` drops the tail half of the file (torn write),
    ``bitflip`` XORs one bit of the last payload byte, ``version``
    rewrites the header's format-version field.  Used both by the
    ``block-file`` fault site and directly by integrity tests."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if mode == "truncate":
        blob = blob[: max(1, len(blob) // 2)]
    elif mode == "bitflip":
        if not blob:
            raise ValueError(f"cannot bitflip empty file {path}")
        blob = blob[:-1] + bytes([blob[-1] ^ 0x01])
    elif mode == "version":
        marker = b'"version": '
        at = blob.find(marker)
        if at < 0:
            raise ValueError(f"no version field to corrupt in {path}")
        at += len(marker)
        blob = blob[:at] + b"0" + blob[at + 1:]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "wb") as fh:
        fh.write(blob)
