"""Checkpointed shot-block execution with crash-exact resume.

A *job* splits one ``sample_batch`` request into fixed-size shot blocks,
gives block ``i`` the ``i``-th child stream of the job seed
(:func:`repro.utils.rng.spawn_seeds` — a pure function of ``(seed, i)``,
independent of process and completion order), runs the blocks in order,
and persists each completed block's outcome records to the job
directory.  After a crash, :func:`run_checkpointed` on the same
directory re-runs only the blocks whose files are missing or fail
integrity checks — and because every block's records are a function of
the job seed alone, the resumed record stream is **bit-identical** to
the uninterrupted run.

The determinism contract, precisely:

* ``(compiled, n_shots, block_shots, seed, backend)`` fixes the record
  stream.  Per block, the records equal a direct
  ``engine.sample_batch(compiled, hi - lo, child_seed_i)`` call — the
  supervisor adds no randomness of its own — and the engines' own
  chunk-invariance contract makes each block invariant to internal chunk
  sizes (``max_block_bytes`` etc.).
* ``block_shots`` is part of the stream identity, like the seed:
  re-blocking a job draws different (equally valid) records.  A job
  directory therefore refuses to resume under changed parameters.

On disk, a job directory holds ``job.json`` (the manifest: format
version, job fingerprint, parameters, the *concrete* seed entropy — so a
job started with ``seed=None`` still resumes exactly) and
``blocks/block_00000.bin`` files, each a one-line JSON header (format
version, job fingerprint, block index and shot range, record shape and
dtype, SHA-256 of the payload) followed by the raw outcome bytes.
Files are written atomically (temp + ``os.replace``); a torn, corrupted,
or version-skewed block file fails validation and is re-run, never
silently merged — see ``tests/test_exec_checkpoint.py``.

Jobs are records-only (``keep_raw`` is rejected): persisting per-shot
states would tie the format to backend internals, and every downstream
consumer of a long job reads outcome records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exec.faults import (
    FILE_FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    corrupt_block_file,
    raise_in_process,
)
from repro.mbqc.backend import SampleRun, get_backend, select_backend
from repro.mbqc.compile import CompiledPattern
from repro.mbqc.pattern import PatternError
from repro.utils.rng import SeedLike, ensure_rng, spawn_seeds

#: On-disk format version shared by the manifest and block headers.
CHECKPOINT_FORMAT_VERSION = 1

#: Default shots per block — small enough that a crash loses little work,
#: large enough that per-block engine dispatch overhead stays negligible.
DEFAULT_BLOCK_SHOTS = 1024

_MANIFEST_NAME = "job.json"
_BLOCKS_DIR = "blocks"


@dataclass(frozen=True)
class BlockPlan:
    """One shot block: records ``[lo, hi)`` of the job's record stream."""

    index: int
    lo: int
    hi: int

    @property
    def shots(self) -> int:
        return self.hi - self.lo


def plan_blocks(n_shots: int, block_shots: int) -> Tuple[BlockPlan, ...]:
    """Split ``n_shots`` into contiguous blocks of ``block_shots`` (the
    last block may be short).  ``n_shots=0`` is a valid empty job."""
    if n_shots < 0:
        raise ValueError(f"n_shots must be non-negative, got {n_shots}")
    if block_shots < 1:
        raise ValueError(f"block_shots must be positive, got {block_shots}")
    bounds = list(range(0, n_shots, block_shots)) + [n_shots]
    if n_shots == 0:
        return ()
    return tuple(
        BlockPlan(index=i, lo=bounds[i], hi=bounds[i + 1])
        for i in range(len(bounds) - 1)
    )


def _seed_entropy(seed: SeedLike) -> int:
    """The concrete root entropy of ``seed`` (fresh entropy for ``None``),
    persisted in the manifest so any resume rebuilds the same streams."""
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "checkpointed jobs need a reproducible seed (int, SeedSequence, "
            "or None for fresh-but-persisted entropy), not a live Generator"
        )
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    entropy = ss.entropy
    if isinstance(entropy, (list, tuple)):
        raise ValueError("seed sequences with composite entropy are not supported")
    return int(entropy)


def job_fingerprint(
    compiled: CompiledPattern,
    *,
    n_shots: int,
    block_shots: int,
    seed_entropy: int,
    backend: str,
    noisy: bool,
) -> str:
    """SHA-256 identity of a job: the program shape, the sampling
    parameters, and the concrete seed.  Two calls agree on the fingerprint
    iff their record streams are interchangeable, so a resume under
    changed parameters is refused instead of merging foreign blocks."""
    h = hashlib.sha256()
    parts = [
        f"v{CHECKPOINT_FORMAT_VERSION}",
        f"n_shots={n_shots}",
        f"block_shots={block_shots}",
        f"seed={seed_entropy}",
        f"backend={backend}",
        f"noisy={int(noisy)}",
        f"inputs={compiled.input_nodes}",
        f"outputs={compiled.output_nodes}",
        f"measured={compiled.measured_nodes}",
        f"out_perm={compiled.out_perm}",
        f"ops={tuple(type(op).__name__ for op in compiled.ops)}",
    ]
    for part in parts:
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def block_path(job_dir: str, index: int) -> str:
    """Path of block ``index``'s record file inside ``job_dir``."""
    return os.path.join(job_dir, _BLOCKS_DIR, f"block_{index:05d}.bin")


def atomic_write_bytes(path: str, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` so readers see either the old file or
    the complete new one, even with concurrent writers.

    Each writer stages into its own ``mkstemp`` file (a shared
    ``path + ".tmp"`` name would let two workers interleave writes and
    ``os.replace`` each other's torn output) and fsyncs before the atomic
    rename, so a crash cannot publish a partially flushed file.  Also
    used by the ``repro.serve`` compiled-pattern cache.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# Backwards-compatible internal alias (pre-serve callers).
_atomic_write = atomic_write_bytes


def write_block(
    job_dir: str, fingerprint: str, plan: BlockPlan, outcomes: np.ndarray
) -> str:
    """Persist one completed block atomically; returns the file path."""
    payload = np.ascontiguousarray(outcomes, dtype=np.int8).tobytes()
    header = {
        "version": CHECKPOINT_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "index": plan.index,
        "lo": plan.lo,
        "hi": plan.hi,
        "shape": list(outcomes.shape),
        "dtype": "int8",
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    path = block_path(job_dir, plan.index)
    _atomic_write(path, json.dumps(header).encode() + b"\n" + payload)
    return path


def load_block(
    job_dir: str, fingerprint: str, plan: BlockPlan, n_measured: int
) -> Optional[np.ndarray]:
    """The persisted records of ``plan``, or ``None`` if the file is
    missing or fails *any* integrity check (torn header, version or
    fingerprint skew, wrong range/shape/dtype, payload checksum mismatch).
    ``None`` always means "re-run the block" — corruption is recoverable
    by construction, so no distinction is surfaced to the caller."""
    path = block_path(job_dir, plan.index)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    sep = blob.find(b"\n")
    if sep < 0:
        return None
    try:
        header = json.loads(blob[:sep].decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    payload = blob[sep + 1:]
    expected_shape = [plan.shots, n_measured]
    if not (
        isinstance(header, dict)
        and header.get("version") == CHECKPOINT_FORMAT_VERSION
        and header.get("fingerprint") == fingerprint
        and header.get("index") == plan.index
        and header.get("lo") == plan.lo
        and header.get("hi") == plan.hi
        and header.get("shape") == expected_shape
        and header.get("dtype") == "int8"
    ):
        return None
    if len(payload) != plan.shots * n_measured:
        return None
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        return None
    return np.frombuffer(payload, dtype=np.int8).reshape(plan.shots, n_measured)


def _manifest_path(job_dir: str) -> str:
    return os.path.join(job_dir, _MANIFEST_NAME)


def load_manifest(job_dir: str) -> Optional[dict]:
    """The job manifest, or ``None`` for a fresh/empty directory.  A
    directory that *has* a manifest but an unreadable one is an error —
    unlike a block file, the manifest is irreplaceable (it holds the
    persisted seed), so silent re-creation would corrupt the job."""
    try:
        with open(_manifest_path(job_dir), "rb") as fh:
            blob = fh.read()
    except OSError:
        return None
    try:
        manifest = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PatternError(
            f"checkpoint manifest {_manifest_path(job_dir)} is unreadable "
            f"({exc}); the job directory cannot be resumed"
        ) from exc
    if manifest.get("version") != CHECKPOINT_FORMAT_VERSION:
        raise PatternError(
            f"checkpoint manifest {_manifest_path(job_dir)} has format "
            f"version {manifest.get('version')!r}, this build writes "
            f"{CHECKPOINT_FORMAT_VERSION}; the job cannot be resumed"
        )
    return manifest


@dataclass
class CheckpointResult:
    """Outcome of one :func:`run_checkpointed` invocation.

    ``run`` is the merged record stream; ``blocks_reused`` /
    ``blocks_run`` say how much persisted work the invocation found vs.
    redid, and ``events`` lists any injected faults it survived."""

    run: SampleRun
    job_dir: str
    fingerprint: str
    backend: str
    seed_entropy: int
    n_blocks: int
    blocks_reused: Tuple[int, ...]
    blocks_run: Tuple[int, ...]
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def resumed(self) -> bool:
        return bool(self.blocks_reused)


def records_digest(run: SampleRun) -> str:
    """SHA-256 of the record stream — the determinism receipt the CLI
    prints so two runs can be compared without shipping the records."""
    payload = np.ascontiguousarray(run.outcomes, dtype=np.int8).tobytes()
    return hashlib.sha256(payload).hexdigest()


def run_checkpointed(
    compiled: CompiledPattern,
    n_shots: int,
    *,
    job_dir: str,
    seed: SeedLike = None,
    backend: str = "auto",
    block_shots: int = DEFAULT_BLOCK_SHOTS,
    noise: Optional[object] = None,
    input_state: Optional[np.ndarray] = None,
    retries: int = 2,
    faults: Optional[FaultSchedule] = None,
    sample_kwargs: Optional[dict] = None,
    cli_meta: Optional[dict] = None,
) -> CheckpointResult:
    """Run (or resume) a checkpointed sampling job in ``job_dir``.

    Idempotent: the first call creates the manifest and runs every block;
    a later call on the same directory validates the manifest against the
    arguments, reuses every block file that passes integrity checks, and
    re-runs only the rest.  Completing an untouched job is a pure read.

    ``retries`` bounds in-place re-runs of a block that raises
    :class:`MemoryError` (the retryable failure class at this site —
    anything else propagates; a *crash* by definition takes the process,
    and recovery happens on the next invocation).  ``faults`` is a
    :class:`~repro.exec.faults.FaultSchedule` consulted at block
    boundaries (site ``"block"``) and after each block file is persisted
    (site ``"block-file"``) — production callers leave it ``None``.

    ``sample_kwargs`` is forwarded to every per-block ``sample_batch``
    call (e.g. ``vectorize``/``max_block_bytes`` knobs); ``keep_raw`` is
    rejected because jobs persist outcome records only.  ``cli_meta`` is
    an opaque dict stored in the manifest (the CLI keeps its arguments
    there so ``repro run --resume JOBDIR`` can rebuild the program).
    """
    kwargs = dict(sample_kwargs or {})
    if kwargs.get("keep_raw"):
        raise ValueError(
            "checkpointed jobs are records-only; keep_raw is not supported"
        )
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    schedule = faults if faults is not None else FaultSchedule()

    if backend == "auto":
        engine = select_backend(compiled)
    else:
        engine = get_backend(backend)
    backend_name = engine.name

    os.makedirs(os.path.join(job_dir, _BLOCKS_DIR), exist_ok=True)
    manifest = load_manifest(job_dir)
    if manifest is None:
        entropy = _seed_entropy(seed)
        fingerprint = job_fingerprint(
            compiled,
            n_shots=n_shots,
            block_shots=block_shots,
            seed_entropy=entropy,
            backend=backend_name,
            noisy=noise is not None,
        )
        manifest = {
            "version": CHECKPOINT_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "n_shots": int(n_shots),
            "block_shots": int(block_shots),
            "seed_entropy": str(entropy),
            "backend": backend_name,
            "cli": cli_meta,
        }
        _atomic_write(
            _manifest_path(job_dir), json.dumps(manifest, indent=1).encode()
        )
    else:
        entropy = int(manifest["seed_entropy"])
        if seed is not None and not isinstance(seed, np.random.Generator):
            if _seed_entropy(seed) != entropy:
                raise PatternError(
                    f"job directory {job_dir} was started with a different "
                    f"seed; pass the original seed or omit it to resume"
                )
        fingerprint = job_fingerprint(
            compiled,
            n_shots=n_shots,
            block_shots=block_shots,
            seed_entropy=entropy,
            backend=backend_name,
            noisy=noise is not None,
        )
        if fingerprint != manifest.get("fingerprint"):
            raise PatternError(
                f"job directory {job_dir} holds a different job "
                f"(manifest n_shots={manifest.get('n_shots')}, "
                f"block_shots={manifest.get('block_shots')}, "
                f"backend={manifest.get('backend')!r}); resuming under "
                f"changed parameters would splice incompatible record "
                f"streams — use a fresh directory"
            )

    plans = plan_blocks(n_shots, block_shots)
    n_measured = len(compiled.measured_nodes)
    if not plans:
        empty = engine.sample_batch(
            compiled, 0, ensure_rng(0), input_state=input_state, noise=noise,
            **kwargs,
        )
        return CheckpointResult(
            run=empty,
            job_dir=job_dir,
            fingerprint=fingerprint,
            backend=backend_name,
            seed_entropy=entropy,
            n_blocks=0,
            blocks_reused=(),
            blocks_run=(),
        )

    child_seeds = spawn_seeds(np.random.SeedSequence(entropy), len(plans))
    events: List[FaultEvent] = []
    reused: List[int] = []
    ran: List[int] = []
    nodes: Optional[Tuple[int, ...]] = None
    pieces: List[np.ndarray] = []

    for plan in plans:
        existing = load_block(job_dir, fingerprint, plan, n_measured)
        if existing is not None:
            reused.append(plan.index)
            pieces.append(existing)
            continue

        attempt = 0
        while True:
            fault = schedule.take("block", plan.index, attempt)
            try:
                if fault is not None:
                    raise_in_process(fault)
                run = engine.sample_batch(
                    compiled,
                    plan.shots,
                    ensure_rng(child_seeds[plan.index]),
                    input_state=input_state,
                    noise=noise,
                    **kwargs,
                )
                break
            except MemoryError as exc:
                if attempt >= retries:
                    raise PatternError(
                        f"block {plan.index} of job {job_dir} failed "
                        f"{attempt + 1} times with MemoryError ({exc}); "
                        f"raise retries= or shrink block_shots="
                    ) from exc
                events.append(
                    FaultEvent(
                        fault=fault,
                        message=(
                            f"block {plan.index} attempt {attempt} raised "
                            f"MemoryError ({exc}); retrying"
                        ),
                    )
                )
                attempt += 1

        nodes = run.nodes
        path = write_block(job_dir, fingerprint, plan, run.outcomes)
        file_fault = schedule.take("block-file", plan.index, 0)
        if file_fault is not None:
            if file_fault.kind not in FILE_FAULT_KINDS:
                raise ValueError(
                    f"fault kind {file_fault.kind!r} is not a block-file "
                    f"corruption ({', '.join(FILE_FAULT_KINDS)})"
                )
            corrupt_block_file(path, file_fault.kind)
            events.append(
                FaultEvent(
                    fault=file_fault,
                    message=(
                        f"block file {path} corrupted ({file_fault.kind}); "
                        f"a resume will detect and re-run the block"
                    ),
                )
            )
        ran.append(plan.index)
        pieces.append(np.asarray(run.outcomes, dtype=np.int8))

    merged = np.concatenate(pieces, axis=0)
    if nodes is None:
        nodes = tuple(compiled.measured_nodes)
    return CheckpointResult(
        run=SampleRun(nodes=nodes, outcomes=merged),
        job_dir=job_dir,
        fingerprint=fingerprint,
        backend=backend_name,
        seed_entropy=entropy,
        n_blocks=len(plans),
        blocks_reused=tuple(reused),
        blocks_run=tuple(ran),
        events=events,
    )


def job_status(job_dir: str, compiled: CompiledPattern) -> dict:
    """A summary of a job directory: manifest parameters plus which
    blocks currently pass integrity checks (``repro run --resume`` prints
    this before finishing the job)."""
    manifest = load_manifest(job_dir)
    if manifest is None:
        raise PatternError(f"no checkpoint manifest in {job_dir}")
    plans = plan_blocks(int(manifest["n_shots"]), int(manifest["block_shots"]))
    n_measured = len(compiled.measured_nodes)
    fingerprint = manifest["fingerprint"]
    valid = [
        p.index
        for p in plans
        if load_block(job_dir, fingerprint, p, n_measured) is not None
    ]
    return {
        "manifest": manifest,
        "n_blocks": len(plans),
        "valid_blocks": valid,
        "missing_blocks": [p.index for p in plans if p.index not in set(valid)],
    }
