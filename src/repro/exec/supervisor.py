"""Supervised sharded exact integration.

:func:`supervised_integrate` is ``DensityMatrixBackend.integrate(shards=N)``
with a survival layer wrapped around the worker pool.  The plain sharded
path treats any worker failure as fatal — a timeout hangs the join, an
OOM-killed worker surfaces as ``BrokenProcessPool`` and the whole frontier
is lost.  Here every shard is a supervised *task*:

* each shard future gets a wall-clock budget (``shard_timeout``) —
  exceeding it cancels the round and retries the shard (diagnostic R103);
* a dead or erroring worker (``BrokenProcessPool``, ``MemoryError``, any
  exception on the future) is retried up to ``retries`` times with
  exponential backoff, under a **fresh** pool each round, because a broken
  pool poisons every sibling future (diagnostic R104);
* a shard that exhausts its retries is **re-split** into two narrower
  frontier slices (halving per-task memory and wall-clock), recursively,
  down to single-branch slices;
* when a single branch still cannot complete in a worker, the slice runs
  **in-process** (``in_process_fallback=True``) — slower, but the run
  finishes;
* only with every recovery layer disabled or exhausted does the run fail,
  and then as a :class:`~repro.mbqc.pattern.PatternError` naming the
  shard, its branch count and probability mass, and the knobs that would
  have saved it.

Determinism: integration draws no randomness, shard partials join in
deterministic slice order (re-split children sum inside their parent's
slot), and a retried shard recomputes the identical partial — so a
supervised run with same-slice retries or in-process fallback is
**bit-identical** to the unsupervised run.  Re-splitting changes the
*association* of the partial sums, which floating-point addition does not
preserve exactly; re-split runs agree with the unsupervised result to
~1e-12 relative error (certified in ``tests/test_exec_supervisor.py``).

Fault injection: a :class:`~repro.exec.faults.FaultSchedule` with site
``"shard"`` delivers crashes, ``MemoryError``, or sleeps *inside* chosen
workers on chosen attempts (the schedule stays in the parent; only a
plain ``(kind, seconds)`` descriptor crosses the process boundary).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.exec.faults import FaultSchedule, apply_worker_fault
from repro.mbqc.backend import get_backend
from repro.mbqc.compile import CompiledPattern
from repro.mbqc.density_backend import (
    DENSITY_MAX_BRANCHES,
    DensityRun,
    _FrontierState,
    _frontier_advance,
    _frontier_collapse,
    _integrate_shard,
    _ZERO_PROB,
)
from repro.mbqc.pattern import PatternError
from repro.sim.density_batched import BatchedDensityMatrix, _batch_traces


def _supervised_shard(
    compiled: CompiledPattern,
    op_index: int,
    tensor: np.ndarray,
    bits: np.ndarray,
    live: int,
    prune_tol: float,
    max_block_bytes: Optional[int],
    fault_descriptor: Optional[Tuple[str, float]],
) -> Tuple[np.ndarray, int, float]:
    """Worker entry: optionally deliver an injected fault, then resume the
    frontier slice exactly like the unsupervised ``_integrate_shard``."""
    apply_worker_fault(fault_descriptor)
    return _integrate_shard(
        compiled, op_index, tensor, bits, live, prune_tol, max_block_bytes
    )


@dataclass
class _ShardTask:
    """One supervised unit of work: a contiguous frontier slice.

    ``path`` places the task in the deterministic join tree — root shards
    are ``(k,)``, a re-split's halves ``(k, 0)`` and ``(k, 1)``, and the
    final sum runs in lexicographic path order, so recovery never
    re-orders the reduction."""

    path: Tuple[int, ...]
    indices: np.ndarray
    attempt: int = 0


@dataclass
class SupervisionReport:
    """What the supervisor did to keep the run alive."""

    shards: int
    events: List[Diagnostic] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    resplits: int = 0
    in_process: int = 0

    @property
    def clean(self) -> bool:
        """True iff no recovery action was needed."""
        return not self.events

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.events)

    def format(self) -> str:
        head = (
            f"supervision: {self.shards} shards, {self.retries} retries, "
            f"{self.timeouts} timeouts, {self.resplits} re-splits, "
            f"{self.in_process} in-process fallbacks"
        )
        if not self.events:
            return head + " (clean)"
        return "\n".join([head] + [d.format() for d in self.events])


@dataclass
class SupervisedDensityRun(DensityRun):
    """A :class:`DensityRun` plus the supervision record that produced it."""

    supervision: Optional[SupervisionReport] = None


def _shard_mass(tensor: np.ndarray, live: int) -> float:
    """Probability mass carried by a frontier slice (sum of branch traces)
    — the "what would be lost" figure for diagnostics."""
    return float(_batch_traces(tensor, live).sum())


def supervised_integrate(
    compiled: CompiledPattern,
    noise: Optional[object] = None,
    input_state: Optional[np.ndarray] = None,
    *,
    shards: int = 2,
    prune_tol: float = _ZERO_PROB,
    max_branches: int = DENSITY_MAX_BRANCHES,
    max_block_bytes: Optional[int] = None,
    retries: int = 2,
    shard_timeout: Optional[float] = None,
    backoff: float = 0.1,
    resplit: bool = True,
    in_process_fallback: bool = True,
    faults: Optional[FaultSchedule] = None,
) -> SupervisedDensityRun:
    """Exact sharded integration that survives worker failure.

    Applies the same guards and produces the same result as
    ``get_backend("density").integrate(..., shards=shards)`` (bit-identical
    when no re-split was needed; ~1e-12 relative after a re-split), but
    wraps the shard pool in timeout / retry / re-split / in-process
    recovery and returns a :class:`SupervisedDensityRun` whose
    ``supervision`` report lists every R103 (shard timeout) and R104
    (worker death or error) event.

    ``retries`` bounds same-slice re-runs per task; ``shard_timeout`` is
    the per-shard wall-clock budget in seconds (``None`` = unbounded);
    ``backoff`` seeds the exponential inter-round delay
    (``backoff · 2^attempt``, capped at 2 s); ``faults`` injects failures
    at site ``"shard"`` for the certification suite."""
    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    schedule = faults if faults is not None else FaultSchedule()
    backend = get_backend("density")

    compiled, plan, row = backend._integration_setup(
        compiled, noise, input_state, max_branches, True
    )
    report = SupervisionReport(shards=shards)

    t0 = BatchedDensityMatrix.from_pure_rows(row[None, :])._t
    bits = np.zeros((1, plan.n_reads), dtype=np.int8)
    state = _FrontierState(0, t0, bits, compiled.num_inputs, 1, 0.0)
    state = _frontier_advance(
        compiled, plan, state, prune_tol, max_block_bytes,
        stop_width=shards if shards > 1 else None,
    )
    if state.op_index >= len(compiled.ops):
        acc = _frontier_collapse(compiled, state.tensor)
        return SupervisedDensityRun(
            **_finish_fields(backend, compiled, acc, state.peak, state.dropped),
            supervision=report,
        )

    b = state.tensor.shape[0]
    cuts = [c for c in np.array_split(np.arange(b), shards) if c.size]
    tasks: List[_ShardTask] = [
        _ShardTask(path=(k,), indices=c) for k, c in enumerate(cuts)
    ]
    done: Dict[Tuple[int, ...], Tuple[np.ndarray, int, float]] = {}
    round_idx = 0

    while tasks:
        retry_next: List[_ShardTask] = []
        pool = ProcessPoolExecutor(max_workers=len(tasks))
        try:
            futures = []
            for task in tasks:
                fault = schedule.take("shard", task.path[0], task.attempt)
                descriptor = (fault.kind, fault.seconds) if fault else None
                futures.append(
                    pool.submit(
                        _supervised_shard, compiled, state.op_index,
                        state.tensor[task.indices], state.bits[task.indices],
                        state.live, prune_tol, max_block_bytes, descriptor,
                    )
                )
            for task, fut in zip(tasks, futures):
                # A broken pool poisons every pending sibling future with
                # BrokenProcessPool *immediately*, so collecting the rest
                # never hangs — and futures that completed before the
                # break still hold their results.
                try:
                    done[task.path] = fut.result(timeout=shard_timeout)
                except FuturesTimeout:
                    report.timeouts += 1
                    _fail(task, retry_next, report, "R103",
                          f"it exceeded the {shard_timeout}s shard budget",
                          state, retries, resplit)
                except BrokenProcessPool:
                    _fail(task, retry_next, report, "R104",
                          "its worker process died (BrokenProcessPool)",
                          state, retries, resplit)
                except Exception as exc:  # MemoryError and friends
                    _fail(task, retry_next, report, "R104",
                          f"its worker raised {type(exc).__name__}: {exc}",
                          state, retries, resplit)
        finally:
            # Never wait: a timed-out worker may still be grinding, and a
            # broken pool cannot be drained.
            pool.shutdown(wait=False, cancel_futures=True)

        escalated: List[_ShardTask] = []
        for task in retry_next:
            if task.attempt <= retries:
                report.retries += 1
                escalated.append(task)
                continue
            # Retries exhausted: re-split, fall back in-process, or give up.
            if resplit and task.indices.size > 1:
                report.resplits += 1
                halves = np.array_split(task.indices, 2)
                escalated.extend(
                    _ShardTask(path=task.path + (j,), indices=h)
                    for j, h in enumerate(halves)
                )
                continue
            if in_process_fallback:
                report.in_process += 1
                done[task.path] = _integrate_shard(
                    compiled, state.op_index, state.tensor[task.indices],
                    state.bits[task.indices], state.live, prune_tol,
                    max_block_bytes,
                )
                continue
            mass = _shard_mass(state.tensor[task.indices], state.live)
            raise PatternError(
                f"shard {_path_name(task.path)} of the supervised frontier "
                f"integration failed {task.attempt} times and recovery is "
                f"exhausted; the shard holds {task.indices.size} of {b} "
                f"frontier branches carrying probability mass {mass:.6g}. "
                f"Raise retries= (now {retries}), set shard_timeout= "
                f"higher, or enable resplit=/in_process_fallback="
            )
        tasks = escalated
        if tasks:
            delay = min(backoff * (2 ** round_idx), 2.0)
            if delay > 0:
                time.sleep(delay)
        round_idx += 1

    acc: Optional[np.ndarray] = None
    peaks = 0
    dropped = state.dropped
    for path in sorted(done):
        part, peak, drop = done[path]
        acc = part if acc is None else acc + part
        peaks += peak
        dropped += drop
    branches = max(state.peak, peaks)
    return SupervisedDensityRun(
        **_finish_fields(backend, compiled, acc, branches, dropped),
        supervision=report,
    )


def _path_name(path: Tuple[int, ...]) -> str:
    return ".".join(str(p) for p in path)


def _fail(
    task: _ShardTask,
    retry_next: List[_ShardTask],
    report: SupervisionReport,
    code: str,
    why: str,
    state: _FrontierState,
    retries: int,
    resplit: bool,
) -> None:
    """Record one shard failure and queue the task's next attempt."""
    mass = _shard_mass(state.tensor[task.indices], state.live)
    action = (
        "retrying"
        if task.attempt < retries
        else (
            "re-splitting" if resplit and task.indices.size > 1
            else "escalating"
        )
    )
    report.events.append(
        Diagnostic(
            code=code,
            severity=Severity.WARNING,
            message=(
                f"shard {_path_name(task.path)} "
                f"({task.indices.size} branches, mass {mass:.6g}, "
                f"attempt {task.attempt}) failed: {why}; {action}"
            ),
        )
    )
    retry_next.append(
        _ShardTask(path=task.path, indices=task.indices, attempt=task.attempt + 1)
    )


def _finish_fields(
    backend, compiled: CompiledPattern, acc: np.ndarray, branches: int,
    dropped: float,
) -> dict:
    """The :class:`DensityRun` constructor fields of a finished
    integration, via the density backend's own finisher so normalization
    and trace accounting stay identical to the unsupervised path."""
    run = backend._finish_run(compiled, acc, branches, dropped)
    return dict(
        rho=run.rho, branches=run.branches, trace=run.trace,
        dropped_weight=run.dropped_weight,
    )
