"""Graceful backend degradation: declarative fallback chains.

A :class:`FallbackPolicy` names an ordered chain of engines — e.g.
``mps -> density -> statevector`` — from most preferred (usually
cheapest) to last resort.  :func:`select_backend_with_fallback` walks the
chain *statically*: a link that is not registered, cannot execute the
pattern, or blows the byte budget (the R101 condition) is skipped with a
recorded reason.  :func:`sample_with_fallback` adds the *dynamic*
triggers: an MPS link whose probe run reports ``truncation_error`` above
the policy tolerance degrades to the next link (bounded entanglement was
the wrong assumption — silently truncated results are worse than slower
exact ones), and a link that fails at runtime (``MemoryError``,
:class:`~repro.mbqc.pattern.PatternError`) is abandoned for the next.

Every skipped link becomes a :class:`DegradationEvent` (stable diagnostic
code R105) in the returned :class:`DegradationReport`, so a degraded run
is always *observable* — the caller learns which engine actually served
and why the preferred ones did not.

Determinism note: each link attempt builds a fresh generator from the
policy seed, so the records of the serving engine do not depend on how
many links failed before it.  Pass an ``int`` (or ``SeedSequence``) seed
for this guarantee — a live ``Generator`` would be advanced by failed
attempts.

:func:`validate_fallback_chain` is the ``repro lint --fallback-chain``
pre-flight: per-link rows (registered / supports / bytes-per-shot /
fits-budget), an ordering check (links should be sorted by increasing
cost so a fallback never gets *more* expensive to no benefit — chains
violating it are flagged, not rejected), and which link would serve a
given budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.resources import estimate_compiled, format_bytes
from repro.mbqc.backend import SampleRun, _REGISTRY, get_backend
from repro.mbqc.compile import CompiledPattern
from repro.mbqc.pattern import PatternError
from repro.utils.rng import SeedLike, ensure_rng, spawn_seeds

#: Links in a chain may be separated by ``->`` (with optional spaces) or
#: commas: ``"mps -> density -> statevector"`` == ``"mps,density,statevector"``.
_SEPARATORS = ("->", ",")


@dataclass(frozen=True)
class FallbackPolicy:
    """A declarative degradation chain.

    ``chain`` is the engine preference order; ``truncation_tol`` arms the
    MPS truncation trigger (``None`` disarms it); ``max_bytes`` is the
    per-shot byte budget a link must fit (``None`` = unbudgeted);
    ``probe_shots`` sizes the cheap truncation probe."""

    chain: Tuple[str, ...]
    truncation_tol: Optional[float] = None
    max_bytes: Optional[int] = None
    probe_shots: int = 8

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("a fallback chain needs at least one engine")
        if len(set(self.chain)) != len(self.chain):
            raise ValueError(
                f"fallback chain repeats an engine: {' -> '.join(self.chain)}"
            )
        if self.probe_shots < 1:
            raise ValueError("probe_shots must be positive")

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        truncation_tol: Optional[float] = None,
        max_bytes: Optional[int] = None,
        probe_shots: int = 8,
    ) -> "FallbackPolicy":
        """Parse ``"a -> b -> c"`` (or comma-separated) into a policy.

        Malformed specs raise :class:`~repro.mbqc.pattern.PatternError`
        (a ``ValueError``) naming the bad link rather than silently
        dropping it — ``"a -> -> b"`` or a trailing separator would
        otherwise parse to a chain the user never wrote.
        """
        text = spec
        for sep in _SEPARATORS[1:]:
            text = text.replace(sep, _SEPARATORS[0])
        parts = [part.strip() for part in text.split(_SEPARATORS[0])]
        if not any(parts):
            raise PatternError(f"empty fallback chain spec {spec!r}")
        if "" in parts:
            raise PatternError(
                f"fallback chain spec {spec!r} has an empty link at "
                f"position {parts.index('') + 1} of {len(parts)}; write one "
                f"engine name per link, e.g. 'mps -> density -> statevector'"
            )
        names = tuple(parts)
        return cls(
            chain=names,
            truncation_tol=truncation_tol,
            max_bytes=max_bytes,
            probe_shots=probe_shots,
        )

    def format(self) -> str:
        return " -> ".join(self.chain)


@dataclass(frozen=True)
class DegradationEvent:
    """One chain link routed past, and why."""

    backend: str
    reason: str

    def as_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code="R105",
            severity=Severity.WARNING,
            message=f"fallback past {self.backend!r}: {self.reason}",
        )


@dataclass
class DegradationReport:
    """How a fallback chain resolved: which engine was asked for, which
    served, and every link skipped on the way (as R105 events)."""

    requested: str
    selected: Optional[str]
    events: List[DegradationEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.selected != self.requested

    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(e.as_diagnostic() for e in self.events)

    def format(self) -> str:
        head = (
            f"degradation: requested {self.requested!r}, "
            f"served by {self.selected!r}"
            if self.selected is not None
            else f"degradation: requested {self.requested!r}, no link served"
        )
        if not self.events:
            return head + " (no fallback taken)"
        return "\n".join(
            [head] + [e.as_diagnostic().format() for e in self.events]
        )


def _static_link_failure(
    compiled: CompiledPattern, name: str, max_bytes: Optional[int]
) -> Optional[str]:
    """Why ``name`` cannot serve ``compiled`` statically — or ``None``."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        return f"engine is not registered (known: {known})"
    backend = get_backend(name)
    if not backend.supports(compiled):
        return "engine does not support this pattern"
    if max_bytes:
        est = estimate_compiled(compiled)
        try:
            per = est.bytes_per_shot(name)
        except ValueError:
            per = None
        if per is not None and per > max_bytes:
            return (
                f"R101 budget: needs {format_bytes(per)} per shot, over "
                f"the {format_bytes(max_bytes)} budget"
            )
    return None


def select_backend_with_fallback(
    compiled: CompiledPattern, policy: FallbackPolicy
):
    """The first chain link that statically can serve ``compiled`` —
    registered, supports the pattern, fits the policy byte budget — plus
    the :class:`DegradationReport` of every link routed past.

    Raises :class:`PatternError` when no link survives (the report's
    events say why, link by link)."""
    report = DegradationReport(requested=policy.chain[0], selected=None)
    for name in policy.chain:
        why = _static_link_failure(compiled, name, policy.max_bytes)
        if why is None:
            report.selected = name
            return get_backend(name), report
        report.events.append(DegradationEvent(backend=name, reason=why))
    raise PatternError(
        f"no link of the fallback chain {policy.format()} can serve this "
        f"pattern:\n" + "\n".join(
            f"  {e.backend}: {e.reason}" for e in report.events
        )
    )


def _probe_truncation(
    backend,
    compiled: CompiledPattern,
    policy: FallbackPolicy,
    probe_seed,
    noise,
    input_state,
) -> float:
    """Worst accumulated MPS truncation error over a small probe batch."""
    probe = backend.sample_batch(
        compiled,
        policy.probe_shots,
        ensure_rng(probe_seed),
        input_state=input_state,
        noise=noise,
        keep_raw=True,
    )
    return max(float(out.truncation_error) for out in probe.raw)


def sample_with_fallback(
    compiled: CompiledPattern,
    n_shots: int,
    policy: FallbackPolicy,
    seed: SeedLike = None,
    *,
    noise: Optional[object] = None,
    input_state: Optional[np.ndarray] = None,
    keep_raw: bool = False,
) -> Tuple[SampleRun, DegradationReport]:
    """Run ``sample_batch`` through the degradation chain.

    Walks the chain: static failures (unregistered, unsupported, over
    budget) skip a link outright; a link with a ``truncation_error``
    contract (the MPS engine) whose probe exceeds ``truncation_tol``
    degrades to the next link; a link that fails at runtime with
    ``MemoryError`` or :class:`PatternError` likewise.  Any other
    exception propagates — degradation routes around *resource* failures,
    not around bugs.  Returns the serving link's run plus the report."""
    report = DegradationReport(requested=policy.chain[0], selected=None)
    # One probe stream and one sampling stream per link, all derived from
    # the caller seed so the serving link's records are a function of
    # (seed, link) alone — independent of which earlier links failed.
    if isinstance(seed, np.random.Generator):
        raise ValueError(
            "sample_with_fallback needs a reproducible seed (int or "
            "SeedSequence), not a live Generator: failed link attempts "
            "would advance it and change the serving link's records"
        )
    root = seed if seed is not None else int(np.random.SeedSequence().entropy)
    link_seeds = spawn_seeds(root, 2 * len(policy.chain))

    for li, name in enumerate(policy.chain):
        why = _static_link_failure(compiled, name, policy.max_bytes)
        if why is not None:
            report.events.append(DegradationEvent(backend=name, reason=why))
            continue
        backend = get_backend(name)
        probe_seed, run_seed = link_seeds[2 * li], link_seeds[2 * li + 1]
        try:
            if policy.truncation_tol is not None and hasattr(
                backend, "chi_max"
            ):
                err = _probe_truncation(
                    backend, compiled, policy, probe_seed, noise, input_state
                )
                if err > policy.truncation_tol:
                    report.events.append(
                        DegradationEvent(
                            backend=name,
                            reason=(
                                f"truncation_error {err:.3g} exceeds the "
                                f"{policy.truncation_tol:.3g} tolerance "
                                f"over a {policy.probe_shots}-shot probe"
                            ),
                        )
                    )
                    continue
            run = backend.sample_batch(
                compiled,
                n_shots,
                ensure_rng(run_seed),
                input_state=input_state,
                noise=noise,
                keep_raw=keep_raw,
            )
        except (MemoryError, PatternError) as exc:
            report.events.append(
                DegradationEvent(
                    backend=name,
                    reason=f"runtime failure: {type(exc).__name__}: {exc}",
                )
            )
            continue
        report.selected = name
        return run, report

    raise PatternError(
        f"no link of the fallback chain {policy.format()} could serve this "
        f"run:\n" + "\n".join(
            f"  {e.backend}: {e.reason}" for e in report.events
        )
    )


@dataclass(frozen=True)
class ChainLinkCheck:
    """One row of a :func:`validate_fallback_chain` report."""

    backend: str
    registered: bool
    supports: bool
    bytes_per_shot: Optional[int]
    fits_budget: Optional[bool]
    reason: Optional[str]

    @property
    def serves(self) -> bool:
        return self.reason is None


@dataclass
class ChainValidation:
    """The ``repro lint --fallback-chain`` pre-flight result."""

    policy: FallbackPolicy
    links: Tuple[ChainLinkCheck, ...]
    serving: Optional[str]
    ordered_by_cost: bool

    @property
    def ok(self) -> bool:
        return self.serving is not None

    def format(self, budget: Optional[int]) -> str:
        lines = [f"fallback chain: {self.policy.format()}"]
        for link in self.links:
            if link.serves:
                status = "ok"
            else:
                status = link.reason
            per = (
                format_bytes(link.bytes_per_shot)
                if link.bytes_per_shot is not None
                else "n/a"
            )
            lines.append(
                f"  {link.backend:<12} {per:>10}/shot  {status}"
            )
        if not self.ordered_by_cost:
            lines.append(
                "  warning: chain is not ordered by increasing "
                "bytes_per_shot — a fallback link costs less than its "
                "predecessor buys"
            )
        if self.serving is None:
            lines.append(
                "  no link can serve this pattern"
                + (f" under {format_bytes(budget)}" if budget else "")
            )
        else:
            lines.append(
                f"  serving link: {self.serving!r}"
                + (f" under {format_bytes(budget)}" if budget else "")
            )
        return "\n".join(lines)


def validate_fallback_chain(
    compiled: CompiledPattern,
    policy: FallbackPolicy,
    budget: Optional[int] = None,
) -> ChainValidation:
    """Statically validate a declared chain against one pattern: per-link
    registration / support / byte-cost rows, a cost-ordering check, and
    which link would serve under ``budget``."""
    est = estimate_compiled(compiled)
    links: List[ChainLinkCheck] = []
    serving: Optional[str] = None
    costs: List[int] = []
    for name in policy.chain:
        registered = name in _REGISTRY
        supports = registered and get_backend(name).supports(compiled)
        per: Optional[int] = None
        if registered:
            try:
                per = est.bytes_per_shot(name)
            except ValueError:
                per = None
        fits: Optional[bool] = None
        if budget and per is not None:
            fits = per <= budget
        if not registered:
            reason = "not registered"
        elif not supports:
            reason = "does not support this pattern"
        elif fits is False:
            reason = f"over budget ({format_bytes(per)}/shot)"
        else:
            reason = None
        if per is not None:
            costs.append(per)
        links.append(
            ChainLinkCheck(
                backend=name,
                registered=registered,
                supports=supports,
                bytes_per_shot=per,
                fits_budget=fits,
                reason=reason,
            )
        )
        if reason is None and serving is None:
            serving = name
    ordered = all(costs[i] <= costs[i + 1] for i in range(len(costs) - 1))
    return ChainValidation(
        policy=policy, links=tuple(links), serving=serving,
        ordered_by_cost=ordered,
    )
