"""Static resource estimation over the compiled-pattern IR.

:func:`estimate_compiled` walks a
:class:`~repro.mbqc.compile.CompiledPattern` once — no amplitudes, no
simulation — and returns a :class:`ResourceEstimate`: the peak per-shot
bytes of each registered engine family, the exact-integration branch
bound, and the shot-chunk sizes a byte budget implies (the PR 5 chunking
formula ``chunk = budget // per_shot_bytes``, clamped to 1).

Per-shot byte formulas (complex128 = 16 bytes):

- ``statevector`` — ``16 · 2^max_live`` amplitudes per batch element.
- ``density``     — ``16 · 4^max_live`` (one density tensor per element;
  kernel temporaries transiently add ~2x on top, see
  :data:`repro.mbqc.density_backend.DENSITY_BATCH_MAX_BYTES`).
- ``stabilizer``  — ``4·n² + 2·n`` bool/int8 tableau bytes over
  ``n = total_nodes`` (the per-shot scalar tableau; the bit-packed batched
  path amortizes the GF(2) structure across shots and is strictly
  cheaper).

Two branch bounds reproduce the density engine's integration costs, both
derived from one :func:`repro.mbqc.compile.signal_liveness` pass:
``branch_bound`` is the raw scalar-path leaf count (dead records merged by
dephase + partial trace at cost 1, live records a factor 2, and 4 when a
readout flip makes the recorded bit differ from the projected one), and
``merged_branch_bound`` is the frontier integrator's peak width — at most
``2^rank`` distinguishable future-read parity patterns at any measurement,
usually far below the raw bound (readout flips do not enter it at all).

:func:`repro.mbqc.backend.select_backend` consults this estimate to emit
an actionable ``R101`` diagnostic *before* committing to an allocation
that would OOM; ``repro lint`` prints the full report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    MeasureOp,
    PrepOp,
    signal_liveness,
)

#: Branch bounds beyond this are reported as "> cap" — the tree is far past
#: any exact integration anyway (cf. DENSITY_MAX_BRANCHES = 2^18).
BRANCH_BOUND_CAP = 1 << 62


def format_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if size < 1024.0 or unit == "PiB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{n} B"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class ResourceEstimate:
    """Static per-backend resource footprint of one compiled pattern."""

    max_live: int
    total_nodes: int
    n_inputs: int
    n_outputs: int
    n_measured: int
    n_ops: int
    n_channels: int
    has_noise: bool
    is_clifford: bool
    has_non_pauli_channel: bool
    statevector_bytes_per_shot: int
    density_bytes_per_shot: int
    tableau_bytes_per_shot: int
    branch_bound: int
    """Raw exact-integration leaf count — the scalar reference path (dead
    records merged, readout flips quadrupling live measurements), capped
    at :data:`BRANCH_BOUND_CAP`."""
    branch_bound_capped: bool
    merged_branch_bound: int
    """Peak frontier width of the default (vectorized) integrator after
    live-parity merging — ``DensityRun.branches`` equals it exactly on
    noiseless patterns.  Also capped at :data:`BRANCH_BOUND_CAP`."""
    merged_branch_bound_capped: bool

    def bytes_per_shot(self, backend: str) -> int:
        """Peak resident bytes one shot/batch element costs on ``backend``
        (keyed by registered engine name)."""
        if backend == "statevector":
            return self.statevector_bytes_per_shot
        if backend == "density":
            return self.density_bytes_per_shot
        if backend == "stabilizer":
            return self.tableau_bytes_per_shot
        raise ValueError(
            f"no byte model for backend {backend!r}; known: "
            f"statevector, stabilizer, density"
        )

    def peak_bytes(self, backend: str, n_shots: int = 1) -> int:
        """Peak resident bytes of an ``n_shots``-element batch."""
        return self.bytes_per_shot(backend) * max(1, int(n_shots))

    def chunk_shots(self, backend: str, budget: int) -> int:
        """Largest shot chunk whose batch block fits ``budget`` bytes —
        the PR 5 byte-budget chunking formula, clamped to 1 so a single
        shot always proceeds."""
        return max(1, int(budget) // max(1, self.bytes_per_shot(backend)))

    def format(self, budget: int = 1 << 26) -> str:
        """The resource report as an aligned text block (``repro lint``)."""
        bb = (
            f"> {BRANCH_BOUND_CAP}" if self.branch_bound_capped
            else str(self.branch_bound)
        )
        mb = (
            f"> {BRANCH_BOUND_CAP}" if self.merged_branch_bound_capped
            else str(self.merged_branch_bound)
        )
        flags: List[str] = []
        if self.is_clifford:
            flags.append("clifford")
        if self.has_noise:
            flags.append("noisy")
        if self.has_non_pauli_channel:
            flags.append("non-pauli-channels")
        rows = [
            ("pattern", f"{self.total_nodes} nodes, {self.n_measured} measured, "
                        f"{self.n_inputs} in / {self.n_outputs} out, "
                        f"{self.n_ops} ops ({self.n_channels} channels)"
                        + (f" [{', '.join(flags)}]" if flags else "")),
            ("peak live", f"{self.max_live} qubits"),
            ("statevector", f"{format_bytes(self.statevector_bytes_per_shot)}"
                            f"/shot (2^{self.max_live} amplitudes)"),
            ("density", f"{format_bytes(self.density_bytes_per_shot)}"
                        f"/shot (4^{self.max_live} amplitudes)"),
            ("tableau", f"{format_bytes(self.tableau_bytes_per_shot)}"
                        f"/shot ({self.total_nodes}-node scalar tableau)"),
            ("exact branches", f"{mb} merged frontier (raw {bb})"),
            (f"chunk @{format_bytes(budget)}",
             f"statevector={self.chunk_shots('statevector', budget)}, "
             f"density={self.chunk_shots('density', budget)}, "
             f"stabilizer={self.chunk_shots('stabilizer', budget)}"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def estimate_compiled(compiled: CompiledPattern) -> ResourceEstimate:
    """Estimate ``compiled``'s execution footprint without running it."""
    ops = compiled.ops
    n_prep = sum(1 for op in ops if type(op) is PrepOp)
    n_channels = sum(1 for op in ops if type(op) is ChannelOp)
    total_nodes = compiled.num_inputs + n_prep
    m = compiled.max_live

    lv = signal_liveness(ops)
    branch_bound = 1
    capped = False
    for i, op in enumerate(ops):
        if type(op) is MeasureOp and not lv.dead[i]:
            branch_bound *= 4 if op.flip_p > 0.0 else 2
            if branch_bound > BRANCH_BOUND_CAP:
                branch_bound = BRANCH_BOUND_CAP
                capped = True
                break
    merged = lv.merged_bound
    merged_capped = merged > BRANCH_BOUND_CAP
    if merged_capped:
        merged = BRANCH_BOUND_CAP

    return ResourceEstimate(
        max_live=m,
        total_nodes=total_nodes,
        n_inputs=compiled.num_inputs,
        n_outputs=compiled.num_outputs,
        n_measured=len(compiled.measured_nodes),
        n_ops=len(ops),
        n_channels=n_channels,
        has_noise=compiled.has_noise,
        is_clifford=compiled.is_clifford,
        has_non_pauli_channel=compiled.has_non_pauli_channel,
        statevector_bytes_per_shot=16 * (1 << m),
        density_bytes_per_shot=16 * (1 << (2 * m)),
        tableau_bytes_per_shot=4 * total_nodes * total_nodes + 2 * total_nodes,
        branch_bound=branch_bound,
        branch_bound_capped=capped,
        merged_branch_bound=merged,
        merged_branch_bound_capped=merged_capped,
    )


def budget_diagnostic_message(
    est: ResourceEstimate, backend: str, budget: int
) -> str:
    """The actionable R101 message ``select_backend`` raises instead of
    letting a ``2^max_live`` (or ``4^max_live``) allocation OOM."""
    per = est.bytes_per_shot(backend)
    lines = [
        f"R101: backend {backend!r} needs {format_bytes(per)} per batch "
        f"element for this pattern (peak live register {est.max_live} "
        f"qubits), over the {format_bytes(budget)} budget.",
        "Options:",
    ]
    if est.is_clifford and backend != "stabilizer":
        lines.append(
            f"  - the pattern is Clifford: the 'stabilizer' engine needs "
            f"only {format_bytes(est.tableau_bytes_per_shot)} per shot"
        )
    if backend == "density" and not est.has_non_pauli_channel:
        lines.append(
            "  - every lowered channel is a Pauli mixture: trajectory "
            "engines can sample this program"
        )
    if backend != "statevector" and est.statevector_bytes_per_shot <= budget:
        lines.append(
            f"  - the 'statevector' engine fits at "
            f"{format_bytes(est.statevector_bytes_per_shot)} per shot"
        )
    lines.append(
        "  - raise the budget via select_backend(..., max_bytes=...) or "
        "disable the check with max_bytes=0"
    )
    lines.append(
        "  - inspect the full estimate with repro.analysis.estimate_compiled "
        "or `repro lint`"
    )
    return "\n".join(lines)


def estimate_report_rows(est: ResourceEstimate) -> Tuple[Tuple[str, str], ...]:
    """Structured ``(field, value)`` rows for machine consumption (CLI
    ``--json`` style consumers; mirrors :meth:`ResourceEstimate.format`)."""
    return (
        ("max_live", str(est.max_live)),
        ("total_nodes", str(est.total_nodes)),
        ("n_measured", str(est.n_measured)),
        ("statevector_bytes_per_shot", str(est.statevector_bytes_per_shot)),
        ("density_bytes_per_shot", str(est.density_bytes_per_shot)),
        ("tableau_bytes_per_shot", str(est.tableau_bytes_per_shot)),
        ("branch_bound", str(est.branch_bound)),
        ("merged_branch_bound", str(est.merged_branch_bound)),
    )
