"""Static resource estimation over the compiled-pattern IR.

:func:`estimate_compiled` walks a
:class:`~repro.mbqc.compile.CompiledPattern` once — no amplitudes, no
simulation — and returns a :class:`ResourceEstimate`: the peak per-shot
bytes of every registered engine, the exact-integration branch bound,
and the shot-chunk sizes a byte budget implies (the PR 5 chunking
formula ``chunk = budget // per_shot_bytes``, clamped to 1).

Per-engine byte models come from the backend registry: any registered
engine exposing a ``bytes_per_shot(compiled)`` hook contributes a row
(:func:`repro.mbqc.backend.list_backends` names them), so a newly
registered engine appears in estimates, reports, and the R101 budget
gate without touching this module.  The built-in models:
``16 · 2^max_live`` dense amplitudes (statevector), ``16 · 4^max_live``
(density, with ~2x transient kernel temporaries), ``4·n² + 2·n`` tableau
bytes over ``n = total_nodes`` (stabilizer scalar path; the bit-packed
batched path is strictly cheaper), and the bonded ``2 · n · chi² · 16``
estimate (mps).

Two branch bounds reproduce the density engine's integration costs, both
derived from one :func:`repro.mbqc.compile.signal_liveness` pass:
``branch_bound`` is the raw scalar-path leaf count (dead records merged by
dephase + partial trace at cost 1, live records a factor 2, and 4 when a
readout flip makes the recorded bit differ from the projected one), and
``merged_branch_bound`` is the frontier integrator's peak width — at most
``2^rank`` distinguishable future-read parity patterns at any measurement,
usually far below the raw bound (readout flips do not enter it at all).

:func:`repro.mbqc.backend.select_backend` consults this estimate to emit
an actionable ``R101`` diagnostic *before* committing to an allocation
that would OOM; ``repro lint`` prints the full report.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    MeasureOp,
    PrepOp,
    signal_liveness,
)

#: Branch bounds beyond this are reported as "> cap" — the tree is far past
#: any exact integration anyway (cf. DENSITY_MAX_BRANCHES = 2^18).
BRANCH_BOUND_CAP = 1 << 62


def format_bytes(n: int) -> str:
    """Human-readable byte count (binary units)."""
    size = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if size < 1024.0 or unit == "PiB":
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{n} B"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class ResourceEstimate:
    """Static per-backend resource footprint of one compiled pattern."""

    max_live: int
    total_nodes: int
    n_inputs: int
    n_outputs: int
    n_measured: int
    n_ops: int
    n_channels: int
    has_noise: bool
    is_clifford: bool
    has_non_pauli_channel: bool
    statevector_bytes_per_shot: int
    density_bytes_per_shot: int
    tableau_bytes_per_shot: int
    branch_bound: int
    """Raw exact-integration leaf count — the scalar reference path (dead
    records merged, readout flips quadrupling live measurements), capped
    at :data:`BRANCH_BOUND_CAP`."""
    branch_bound_capped: bool
    merged_branch_bound: int
    """Peak frontier width of the default (vectorized) integrator after
    live-parity merging — ``DensityRun.branches`` equals it exactly on
    noiseless patterns.  Also capped at :data:`BRANCH_BOUND_CAP`."""
    merged_branch_bound_capped: bool
    engine_bytes: Tuple[Tuple[str, int, str], ...] = ()
    """``(engine_name, bytes_per_shot, note)`` rows gathered from every
    registered backend exposing the ``bytes_per_shot(compiled)`` hook —
    the single source for :meth:`bytes_per_shot`, :meth:`format`, and the
    R101 budget gate.  Engines without the hook simply contribute no row
    (and :meth:`bytes_per_shot` raises for them)."""

    def engine_row(self, backend: str) -> Tuple[str, int, str]:
        """The ``(name, bytes, note)`` row for one registered engine."""
        for row in self._rows():
            if row[0] == backend:
                return row
        known = ", ".join(row[0] for row in self._rows())
        raise ValueError(
            f"no byte model for backend {backend!r}; known: {known}"
        )

    def _rows(self) -> Tuple[Tuple[str, int, str], ...]:
        """Engine rows, falling back to the built-in trio for estimates
        constructed by hand without ``engine_bytes``."""
        if self.engine_bytes:
            return self.engine_bytes
        return (
            ("density", self.density_bytes_per_shot,
             f"4^{self.max_live} amplitudes"),
            ("stabilizer", self.tableau_bytes_per_shot,
             f"{self.total_nodes}-node scalar tableau"),
            ("statevector", self.statevector_bytes_per_shot,
             f"2^{self.max_live} amplitudes"),
        )

    def bytes_per_shot(self, backend: str) -> int:
        """Peak resident bytes one shot/batch element costs on ``backend``
        (keyed by registered engine name)."""
        return self.engine_row(backend)[1]

    def peak_bytes(self, backend: str, n_shots: int = 1) -> int:
        """Peak resident bytes of an ``n_shots``-element batch."""
        return self.bytes_per_shot(backend) * max(1, int(n_shots))

    def chunk_shots(self, backend: str, budget: int) -> int:
        """Largest shot chunk whose batch block fits ``budget`` bytes —
        the PR 5 byte-budget chunking formula, clamped to 1 so a single
        shot always proceeds."""
        return max(1, int(budget) // max(1, self.bytes_per_shot(backend)))

    def format(self, budget: int = 1 << 26) -> str:
        """The resource report as an aligned text block (``repro lint``)."""
        bb = (
            f"> {BRANCH_BOUND_CAP}" if self.branch_bound_capped
            else str(self.branch_bound)
        )
        mb = (
            f"> {BRANCH_BOUND_CAP}" if self.merged_branch_bound_capped
            else str(self.merged_branch_bound)
        )
        flags: List[str] = []
        if self.is_clifford:
            flags.append("clifford")
        if self.has_noise:
            flags.append("noisy")
        if self.has_non_pauli_channel:
            flags.append("non-pauli-channels")
        rows = [
            ("pattern", f"{self.total_nodes} nodes, {self.n_measured} measured, "
                        f"{self.n_inputs} in / {self.n_outputs} out, "
                        f"{self.n_ops} ops ({self.n_channels} channels)"
                        + (f" [{', '.join(flags)}]" if flags else "")),
            ("peak live", f"{self.max_live} qubits"),
        ]
        for name, nbytes, note in self._rows():
            detail = f" ({note})" if note else ""
            rows.append((name, f"{format_bytes(nbytes)}/shot{detail}"))
        rows.append(("exact branches", f"{mb} merged frontier (raw {bb})"))
        rows.append((
            f"chunk @{format_bytes(budget)}",
            ", ".join(
                f"{name}={self.chunk_shots(name, budget)}"
                for name, _, _ in self._rows()
            ),
        ))
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def _registry_engine_bytes(
    compiled: CompiledPattern,
) -> Tuple[Tuple[str, int, str], ...]:
    """One ``(name, bytes_per_shot, note)`` row per registered engine that
    exposes the ``bytes_per_shot(compiled)`` hook.  Imported lazily (and
    dynamically — the engine modules predate typing) so the analysis layer
    stays importable without pulling them in at module-import time."""
    _backends = importlib.import_module("repro.mbqc.backend")

    rows: List[Tuple[str, int, str]] = []
    for name in _backends.list_backends():
        engine = _backends.get_backend(name)
        hook = getattr(engine, "bytes_per_shot", None)
        if hook is None:
            continue
        rows.append(
            (name, int(hook(compiled)), getattr(engine, "byte_model_note", ""))
        )
    return tuple(rows)


def estimate_compiled(compiled: CompiledPattern) -> ResourceEstimate:
    """Estimate ``compiled``'s execution footprint without running it."""
    ops = compiled.ops
    n_prep = sum(1 for op in ops if type(op) is PrepOp)
    n_channels = sum(1 for op in ops if type(op) is ChannelOp)
    total_nodes = compiled.num_inputs + n_prep
    m = compiled.max_live

    lv = signal_liveness(ops)
    branch_bound = 1
    capped = False
    for i, op in enumerate(ops):
        if type(op) is MeasureOp and not lv.dead[i]:
            branch_bound *= 4 if op.flip_p > 0.0 else 2
            if branch_bound > BRANCH_BOUND_CAP:
                branch_bound = BRANCH_BOUND_CAP
                capped = True
                break
    merged = lv.merged_bound
    merged_capped = merged > BRANCH_BOUND_CAP
    if merged_capped:
        merged = BRANCH_BOUND_CAP

    return ResourceEstimate(
        max_live=m,
        total_nodes=total_nodes,
        n_inputs=compiled.num_inputs,
        n_outputs=compiled.num_outputs,
        n_measured=len(compiled.measured_nodes),
        n_ops=len(ops),
        n_channels=n_channels,
        has_noise=compiled.has_noise,
        is_clifford=compiled.is_clifford,
        has_non_pauli_channel=compiled.has_non_pauli_channel,
        statevector_bytes_per_shot=16 * (1 << m),
        density_bytes_per_shot=16 * (1 << (2 * m)),
        tableau_bytes_per_shot=4 * total_nodes * total_nodes + 2 * total_nodes,
        branch_bound=branch_bound,
        branch_bound_capped=capped,
        merged_branch_bound=merged,
        merged_branch_bound_capped=merged_capped,
        engine_bytes=_registry_engine_bytes(compiled),
    )


def budget_diagnostic_message(
    est: ResourceEstimate, backend: str, budget: int, compiled=None
) -> str:
    """The actionable R101 message ``select_backend`` raises instead of
    letting a ``2^max_live`` (or ``4^max_live``) allocation OOM.

    Every *other* registered engine whose estimated per-shot bytes fit
    ``budget`` gets its own option line; pass the ``compiled`` pattern to
    additionally filter those suggestions through each engine's
    ``supports`` check (engines that cannot execute the pattern are then
    not suggested)."""
    per = est.bytes_per_shot(backend)
    lines = [
        f"R101: backend {backend!r} needs {format_bytes(per)} per batch "
        f"element for this pattern (peak live register {est.max_live} "
        f"qubits), over the {format_bytes(budget)} budget.",
        "Options:",
    ]
    if est.is_clifford and backend != "stabilizer":
        lines.append(
            f"  - the pattern is Clifford: the 'stabilizer' engine needs "
            f"only {format_bytes(est.tableau_bytes_per_shot)} per shot"
        )
    if backend == "density" and not est.has_non_pauli_channel:
        lines.append(
            "  - every lowered channel is a Pauli mixture: trajectory "
            "engines can sample this program"
        )
    for name, nbytes, _ in est._rows():
        if name == backend or nbytes > budget:
            continue
        if compiled is not None:
            try:
                _backends = importlib.import_module("repro.mbqc.backend")
                if not _backends.get_backend(name).supports(compiled):
                    continue
            except Exception:
                pass
        lines.append(
            f"  - the {name!r} engine fits at {format_bytes(nbytes)} per shot"
        )
    lines.append(
        "  - raise the budget via select_backend(..., max_bytes=...) or "
        "disable the check with max_bytes=0"
    )
    lines.append(
        "  - inspect the full estimate with repro.analysis.estimate_compiled "
        "or `repro lint`"
    )
    return "\n".join(lines)


def estimate_report_rows(est: ResourceEstimate) -> Tuple[Tuple[str, str], ...]:
    """Structured ``(field, value)`` rows for machine consumption (CLI
    ``--json`` style consumers; mirrors :meth:`ResourceEstimate.format`)."""
    rows: List[Tuple[str, str]] = [
        ("max_live", str(est.max_live)),
        ("total_nodes", str(est.total_nodes)),
        ("n_measured", str(est.n_measured)),
    ]
    for name, nbytes, _ in est._rows():
        rows.append((f"{name}_bytes_per_shot", str(nbytes)))
    rows.append(("branch_bound", str(est.branch_bound)))
    rows.append(("merged_branch_bound", str(est.merged_branch_bound)))
    return tuple(rows)


def cache_diagnostics(stats: object) -> Tuple["Diagnostic", ...]:
    """R106 rows for a serving-layer compiled-pattern cache.

    ``stats`` is a :class:`repro.serve.cache.CacheStats` (structurally: an
    object with ``memory_hits``/``disk_hits``/``misses``/``stores``/
    ``poisoned`` counters).  Hit/miss traffic is an INFO row; poisoned
    entries get their own WARNING row — corruption is self-healing (the
    entry is recompiled and re-stored) but worth surfacing, since it
    usually means a torn write or a stray process scribbling on the
    cache directory.
    """
    from repro.analysis.diagnostics import Diagnostic, Severity

    memory_hits = int(getattr(stats, "memory_hits", 0))
    disk_hits = int(getattr(stats, "disk_hits", 0))
    misses = int(getattr(stats, "misses", 0))
    stores = int(getattr(stats, "stores", 0))
    poisoned = int(getattr(stats, "poisoned", 0))
    total = memory_hits + disk_hits + misses
    rows: List["Diagnostic"] = []
    if total:
        hit_rate = (memory_hits + disk_hits) / total
        rows.append(
            Diagnostic(
                code="R106",
                severity=Severity.INFO,
                message=(
                    f"pattern cache: {memory_hits + disk_hits}/{total} hits "
                    f"({hit_rate:.0%}; {memory_hits} memory, {disk_hits} disk), "
                    f"{misses} compiles, {stores} stores"
                ),
            )
        )
    if poisoned:
        rows.append(
            Diagnostic(
                code="R106",
                severity=Severity.WARNING,
                message=(
                    f"pattern cache: {poisoned} poisoned entr"
                    f"{'y' if poisoned == 1 else 'ies'} detected and "
                    f"recompiled (torn write or external corruption; "
                    f"entries were re-stored)"
                ),
            )
        )
    return tuple(rows)
