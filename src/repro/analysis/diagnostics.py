"""Diagnostic framework for the static analyzers.

Every finding the :mod:`repro.analysis` subsystem produces — IR verifier,
resource estimator, repo contract linter — is a :class:`Diagnostic`: a
stable code (``R0xx`` IR well-formedness, ``R1xx`` resources, ``C0xx`` repo
contracts), a :class:`Severity`, a human-readable message, and source
attribution (compiled-op index + node id for IR findings, ``file:line`` for
contract findings).  Codes are stable API: tests, CI gates, and downstream
tooling match on them, so a code is never reused for a different condition.

:class:`AnalysisReport` bundles the diagnostics of one ``analyze()`` run
with the pattern's :class:`~repro.analysis.resources.ResourceEstimate` and
offers the gate primitives (``ok``, ``raise_if_errors``) that
``compile_pattern(verify_ir=True)`` and ``repro lint`` are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.mbqc.pattern import PatternError

if TYPE_CHECKING:  # resources imports the IR; keep the runtime graph flat
    from repro.analysis.resources import ResourceEstimate


class Severity(IntEnum):
    """Diagnostic severity: errors gate execution, warnings indicate code
    the compiler should not have produced, infos are advisory."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # noqa: D105 - enum display name
        return self.name.lower()


#: Stable code registry: ``code -> one-line description``.  ``R0xx`` are IR
#: well-formedness findings, ``R1xx`` resource findings, ``C0xx`` repo
#: contract findings.  (Documented in README's diagnostic code table.)
CODES = {
    "R001": "use-after-discard: op references a dead or out-of-range slot",
    "R002": "bad preparation: duplicate node or non-append slot",
    "R003": "entangler targets a slot pair that is not two distinct live slots",
    "R004": "slot/node binding mismatch: op's node is not the node in its slot",
    "R005": "max_live inconsistent with the recomputed peak register width",
    "R006": "out_perm inconsistent with the surviving output slots",
    "R007": "measured_nodes inconsistent with the MeasureOp stream",
    "R008": "duplicate or overlapping input/output node declarations",
    "R009": "malformed measurement basis table",
    "R010": "dangling signal: domain reads an outcome that is never written",
    "R011": "dead correction: empty signal domain can never fire",
    "R012": "dead signal: recorded outcome is never read downstream",
    "R020": "ChannelOp arity does not fit the live register",
    "R021": "Kraus set is not a channel (completeness violated)",
    "R022": "readout flip probability outside [0, 1]",
    "R023": "pauli_probs inconsistent with the channel's Kraus operators",
    "R101": "estimated peak bytes exceed the configured budget",
    "R102": "exact-integration branch bound exceeds the density engine cap",
    "R103": "shard timeout: a supervised shard exceeded its wall-clock budget",
    "R104": "worker death: a supervised shard worker died or errored and was retried",
    "R105": "backend fallback: the degradation chain routed past a failed link",
    "R106": "compiled-pattern cache event (hit, miss, store, or poisoned entry)",
    "C001": "np.random.default_rng called outside repro.utils.rng",
    "C002": "global numpy.random state used (unseeded, unreproducible)",
    "C003": "scalar RNG draw inside a kernel loop (breaks whole-block draw tables)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding with stable code and attribution."""

    code: str
    severity: Severity
    message: str
    op_index: Optional[int] = None
    """Index into ``CompiledPattern.ops`` for IR findings."""
    node: Optional[int] = None
    """Pattern node id the finding concerns, when one exists."""
    where: Optional[str] = None
    """``file:line`` attribution for repo-contract findings."""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def format(self) -> str:
        """One display line: ``code severity [attribution] message``."""
        at = ""
        if self.where is not None:
            at = f" [{self.where}]"
        elif self.op_index is not None:
            at = f" [op {self.op_index}"
            if self.node is not None:
                at += f", node {self.node}"
            at += "]"
        elif self.node is not None:
            at = f" [node {self.node}]"
        return f"{self.code} {self.severity}{at}: {self.message}"


def format_diagnostics(diags: Sequence[Diagnostic]) -> str:
    """Multi-line report, most severe first (stable within a severity)."""
    ordered = sorted(
        enumerate(diags), key=lambda pair: (-int(pair[1].severity), pair[0])
    )
    return "\n".join(d.format() for _, d in ordered)


@dataclass(frozen=True)
class AnalysisReport:
    """The result of one ``analyze(compiled)`` run.

    ``diagnostics`` holds every verifier finding; ``resources`` the static
    resource estimate (always present — estimation needs no validity).
    """

    diagnostics: Tuple[Diagnostic, ...]
    resources: Optional["ResourceEstimate"] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True iff no error-severity diagnostic was produced."""
        return not self.errors

    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def raise_if_errors(self) -> None:
        """Raise :class:`~repro.mbqc.pattern.PatternError` listing every
        error-severity diagnostic (the ``verify_ir=True`` gate)."""
        errs = self.errors
        if errs:
            raise PatternError(
                "compiled pattern failed IR verification:\n"
                + format_diagnostics(errs)
            )

    def format(self, budget: int = 1 << 26) -> str:
        """Human-readable report: diagnostics block + resource estimate
        (``budget`` feeds the chunk-size row of the resource report)."""
        lines: List[str] = []
        if self.diagnostics:
            lines.append(format_diagnostics(self.diagnostics))
        else:
            lines.append("no diagnostics")
        lines.append(
            f"({len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{len(self.diagnostics) - len(self.errors) - len(self.warnings)} infos)"
        )
        if self.resources is not None:
            lines.append("")
            lines.append(self.resources.format(budget))
        return "\n".join(lines)
