"""Static analysis over the compiled MBQC IR — no simulation required.

Three analyzers share the :class:`Diagnostic` framework:

- :func:`verify_compiled` — dataflow verifier over ``CompiledPattern.ops``
  (slot lifetimes, signal flow, noise-IR validity).
- :func:`estimate_compiled` — static resource estimator (peak bytes per
  backend, exact-integration branch bound, shot-chunk sizes).
- :func:`lint_tree` — repo-level seeded-stream contract linter (stdlib
  ``ast`` walk; codes ``C001``–``C003``).

:func:`analyze` is the front door: verifier + estimator in one
:class:`AnalysisReport`.  ``compile_pattern(..., verify_ir=True)`` gates
on it, ``select_backend`` consults the estimate before allocating, and
``repro lint`` prints the whole report.
"""

from repro.analysis.contracts import (
    format_contract_report,
    lint_paths,
    lint_source,
    lint_tree,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    format_diagnostics,
)
from repro.analysis.resources import (
    ResourceEstimate,
    budget_diagnostic_message,
    estimate_compiled,
    format_bytes,
)
from repro.analysis.verifier import verify_compiled

__all__ = [
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "ResourceEstimate",
    "Severity",
    "analyze",
    "budget_diagnostic_message",
    "estimate_compiled",
    "format_bytes",
    "format_contract_report",
    "format_diagnostics",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "verify_compiled",
]


def analyze(compiled) -> AnalysisReport:
    """Statically analyze a :class:`~repro.mbqc.compile.CompiledPattern`.

    Runs the dataflow verifier and the resource estimator; never executes
    the pattern.  The returned report's ``ok``/``raise_if_errors`` are the
    gates ``verify_ir=True`` and ``repro lint`` use.
    """
    return AnalysisReport(
        diagnostics=tuple(verify_compiled(compiled)),
        resources=estimate_compiled(compiled),
    )
