"""Repo-level seeded-stream contract linter (stdlib ``ast``, no deps).

The trajectory engines depend on three invariants that no type checker
sees, so this module enforces them structurally over ``src/``:

``C001``
    ``np.random.default_rng`` may be called only inside
    ``repro.utils.rng`` — everything else accepts a ``SeedLike`` and
    routes through :func:`repro.utils.rng.ensure_rng`, so one integer
    seeds an entire experiment.
``C002``
    The legacy global ``np.random.*`` state (``np.random.seed``,
    ``np.random.rand``, ...) is banned outright: it is unseeded process
    state and silently breaks run-to-run reproducibility.  Referencing
    the *types* (``np.random.Generator`` in annotations, etc.) is fine.
``C003``
    Inside the kernel packages (``repro.mbqc``, ``repro.stab``,
    ``repro.sim``) a generator must not make scalar draws inside a
    ``for``/``while`` loop: per-op draws make the consumed stream depend
    on data order, which breaks the whole-block draw tables that keep
    the vectorized and scalar paths bit-identical.  The documented
    scalar reference paths (:data:`C003_ALLOW`) are exempt.

Run via :func:`lint_tree` (pytest + CI) or ``repro lint --contracts``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.analysis.diagnostics import Diagnostic, Severity

#: Module path suffixes where C001/C002 do not apply (the one sanctioned
#: ``default_rng`` call site).
RNG_MODULE_SUFFIXES = ("repro/utils/rng.py",)

#: Path fragments identifying the kernel packages C003 covers.
KERNEL_PACKAGE_FRAGMENTS = ("repro/mbqc/", "repro/stab/", "repro/sim/")

#: Enclosing function/class names exempt from C003 — the documented
#: scalar trajectory reference paths whose draw order is part of their
#: contract (each one's docstring says so).
C003_ALLOW = frozenset(
    {"draw_pauli_fault", "run_pattern", "run_pattern_noisy", "_GeneratorDraws"}
)

#: ``np.random`` attributes that are legitimate non-drawing references
#: (types for annotations/isinstance, the sanctioned constructor which
#: C001 polices separately).
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

#: Generator methods that produce variates.  A call with no ``size``
#: argument yields a scalar — the shape C003 hunts inside loops.
_DRAW_METHODS = frozenset(
    {
        "random",
        "integers",
        "choice",
        "uniform",
        "normal",
        "standard_normal",
        "permutation",
        "shuffle",
        "binomial",
        "exponential",
    }
)


def _is_np_random(node: ast.AST) -> bool:
    """True for the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _looks_like_rng(node: ast.AST) -> bool:
    """Heuristic: does this expression name a generator object?"""
    if isinstance(node, ast.Name):
        return "rng" in node.id.lower() or node.id == "gen"
    if isinstance(node, ast.Attribute):
        return "rng" in node.attr.lower()
    return False


def _is_scalar_draw(call: ast.Call) -> bool:
    """True when ``call`` is a generator draw with no ``size`` — i.e. it
    consumes exactly one variate from the stream."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _DRAW_METHODS:
        return False
    if not _looks_like_rng(func.value):
        return False
    if any(kw.arg == "size" for kw in call.keywords):
        return False
    # rng.random(n) passes size positionally; the parameterized draws
    # (integers/uniform/...) take distribution arguments first, so a
    # positional arg does not imply a vector there.
    if func.attr in ("random", "standard_normal") and call.args:
        return False
    return True


class _ContractVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, in_kernel: bool) -> None:
        self.filename = filename
        self.in_kernel = in_kernel
        self.diagnostics: List[Diagnostic] = []
        self._scope: List[str] = []
        self._loop_depth = 0

    def _emit(self, code: str, severity: Severity, message: str, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                where=f"{self.filename}:{line}",
            )
        )

    # -- scope / loop tracking -------------------------------------------
    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        # a new function body is not lexically "inside" the outer loop
        saved, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = saved
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # comprehensions iterate too
    def _visit_comp(self, node: ast.AST) -> None:
        self._visit_loop(node)

    visit_ListComp = visit_SetComp = visit_DictComp = visit_GeneratorExp = _visit_comp

    # -- the checks ------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr not in _NP_RANDOM_OK:
            self._emit(
                "C002",
                Severity.ERROR,
                f"global numpy.random.{node.attr} used; draw from a seeded "
                f"Generator via repro.utils.rng.ensure_rng instead",
                node,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_default_rng = (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and _is_np_random(func.value)
        ) or (isinstance(func, ast.Name) and func.id == "default_rng")
        if is_default_rng:
            self._emit(
                "C001",
                Severity.ERROR,
                "np.random.default_rng called outside repro.utils.rng; "
                "accept a SeedLike and call ensure_rng",
                node,
            )
        elif (
            self.in_kernel
            and self._loop_depth > 0
            and _is_scalar_draw(node)
            and not any(name in C003_ALLOW for name in self._scope)
        ):
            self._emit(
                "C003",
                Severity.ERROR,
                "scalar RNG draw inside a loop; hoist to one whole-block "
                "draw (size=...) so the consumed stream is data-independent, "
                "or add the enclosing scope to C003_ALLOW if this is a "
                "documented scalar reference path",
                node,
            )
        self.generic_visit(node)


def _normalized(path: Union[str, Path]) -> str:
    return str(path).replace("\\", "/")


def lint_source(source: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text against the seeded-stream contracts."""
    norm = _normalized(filename)
    if norm.endswith(RNG_MODULE_SUFFIXES):
        return []
    tree = ast.parse(source, filename=filename)
    visitor = _ContractVisitor(
        filename, in_kernel=any(f in norm for f in KERNEL_PACKAGE_FRAGMENTS)
    )
    visitor.visit(tree)
    return visitor.diagnostics


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Diagnostic]:
    """Lint a collection of python files; unreadable/unparsable files
    surface as C002-free syntax errors from :func:`ast.parse` (a broken
    file should fail loudly, not be skipped)."""
    out: List[Diagnostic] = []
    for path in paths:
        p = Path(path)
        out.extend(lint_source(p.read_text(encoding="utf-8"), str(p)))
    return out


def lint_tree(root: Union[str, Path]) -> List[Diagnostic]:
    """Recursively lint every ``*.py`` under ``root`` (sorted for stable
    output order)."""
    root_path = Path(root)
    if root_path.is_file():
        return lint_paths([root_path])
    return lint_paths(sorted(root_path.rglob("*.py")))


def format_contract_report(diags: Sequence[Diagnostic]) -> str:
    """One line per finding, file order preserved."""
    if not diags:
        return "contracts clean"
    return "\n".join(d.format() for d in diags)
