"""Static dataflow verifier over the compiled-pattern IR.

:func:`verify_compiled` replays the slot dynamics of a
:class:`~repro.mbqc.compile.CompiledPattern` — the same register discipline
the compiler and every engine use: prepared nodes append a slot, measured
slots compact away, slots above shift down — **without simulating
anything**, and cross-checks every op against the replayed register:

- **slot lifetimes** — no entangle/measure/correct/channel on a dead or
  out-of-range slot (``R001`` use-after-discard), preparations append in
  order (``R002``), each measurement's recorded node is the node actually
  living in its slot (``R004``), ``out_perm`` maps exactly onto the
  surviving output slots (``R006``), and ``max_live`` equals the recomputed
  peak register width (``R005``).
- **signal flow** — measurement records are the only signal writers;
  ``ConditionalOp`` domains and ``MeasureOp`` s/t domains are the readers.
  Reads of never-written signals are dangling (``R010``); empty-domain
  corrections can never fire and should have been dead-code-eliminated
  (``R011``, warning); written-never-read records are advisory dead signals
  (``R012``, info — final-layer outcomes are legitimately unread).  The
  dangling/read sets come from :func:`repro.mbqc.compile.signal_liveness`,
  the same analysis that drives the density engine's branch merging and
  the resource estimator's branch bounds.
- **noise IR** — every ``ChannelOp`` must be a single-qubit channel on a
  live slot (``R020``), its Kraus set must be trace preserving (``R021``
  via :func:`repro.sim.density.validate_kraus`), its ``pauli_probs``
  classification must match the operators (``R023`` — trajectory engines
  sample that table), and readout flips must be probabilities (``R022``).

The verifier is best-effort on corrupted streams: a finding never aborts
the walk, so one `analyze` run reports every independent defect it can
still attribute.  All checks are pure IR inspection — ``O(ops + signals)``
time, no amplitudes allocated — so they are cheap enough for the opt-in
``compile_pattern(verify_ir=True)`` gate and the ``repro lint`` CLI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.mbqc.compile import (
    ChannelOp,
    CompiledPattern,
    ConditionalOp,
    EntangleOp,
    MeasureOp,
    PrepOp,
    UnitaryOp,
    signal_liveness,
)
from repro.sim.density import validate_kraus

_ATOL = 1e-9


def _channel_pauli_probs(kraus) -> Optional[tuple]:
    """Reclassify a Kraus set as a Pauli mixture (see
    :attr:`repro.mbqc.channels.Channel.pauli_probs`); ``None`` when it is
    not one.  Local reimplementation so the verifier never trusts the very
    field it is checking."""
    from repro.linalg.gates import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z

    if kraus[0].shape != (2, 2):
        return None
    probs = [0.0, 0.0, 0.0, 0.0]
    for k in kraus:
        for i, pauli in enumerate((IDENTITY, PAULI_X, PAULI_Y, PAULI_Z)):
            m = pauli.conj().T @ np.asarray(k, dtype=complex)
            if (
                abs(m[0, 1]) < 1e-12
                and abs(m[1, 0]) < 1e-12
                and abs(m[0, 0] - m[1, 1]) < 1e-12
            ):
                probs[i] += float(np.real(np.vdot(k, k))) / 2.0
                break
        else:
            return None
    return tuple(probs)


class _Walk:
    """Mutable replay state + diagnostic sink for one verification run."""

    def __init__(self, compiled: CompiledPattern):
        self.compiled = compiled
        self.diags: List[Diagnostic] = []
        self.live: List[int] = list(compiled.input_nodes)
        self.measured: Set[int] = set()
        self.measured_order: List[int] = []
        self.max_live = len(self.live)
        # Shared signal-dataflow analysis: R010 dangling sets and the R012
        # read-node set come from the same pass the density integrator and
        # resource estimator consume.
        self.liveness = signal_liveness(compiled.ops)
        self.reads_by_key = {
            (r.op_index, r.kind): r for r in self.liveness.reads
        }

    def emit(
        self,
        code: str,
        severity: Severity,
        message: str,
        op_index: Optional[int] = None,
        node: Optional[int] = None,
    ) -> None:
        self.diags.append(Diagnostic(code, severity, message, op_index, node))

    def error(self, code: str, message: str, op_index=None, node=None) -> None:
        self.emit(code, Severity.ERROR, message, op_index, node)

    def check_slot(self, slot: int, i: int, what: str) -> bool:
        """True iff ``slot`` is a live register index; emits R001 otherwise."""
        if 0 <= slot < len(self.live):
            return True
        self.error(
            "R001",
            f"{what} targets slot {slot}, but only slots "
            f"0..{len(self.live) - 1} are live at op {i} "
            f"(use of a discarded or never-existing slot)",
            op_index=i,
        )
        return False

    def check_domain(self, i: int, kind: str, owner: int, what: str) -> None:
        """Signal-flow read check: every domain entry must have been
        written (measured) strictly earlier in the stream.  The dangling
        set is precomputed by :func:`signal_liveness`."""
        read = self.reads_by_key[(i, kind)]
        if read.dangling:
            self.error(
                "R010",
                f"{what} for node {owner} reads signals "
                f"{sorted(read.dangling)} that are never written before "
                f"op {i} (dangling signal)",
                op_index=i,
                node=owner,
            )


def verify_compiled(compiled: CompiledPattern) -> List[Diagnostic]:
    """Statically verify ``compiled``'s op stream; returns all findings.

    Never raises on a malformed stream — defects come back as
    :class:`~repro.analysis.diagnostics.Diagnostic` records (see the module
    docstring for the code map).  An empty error set means every engine can
    execute the program without tripping a deep kernel error on IR shape.
    """
    w = _Walk(compiled)

    if len(set(compiled.input_nodes)) != len(compiled.input_nodes):
        w.error("R008", "duplicate input node declarations")
    if len(set(compiled.output_nodes)) != len(compiled.output_nodes):
        w.error("R008", "duplicate output node declarations")

    for i, op in enumerate(compiled.ops):
        tp = type(op)
        if tp is PrepOp:
            _verify_prep(w, op, i)
        elif tp is EntangleOp:
            _verify_entangle(w, op, i)
        elif tp is MeasureOp:
            _verify_measure(w, op, i)
        elif tp is ConditionalOp:
            _verify_conditional(w, op, i)
        elif tp is UnitaryOp:
            w.check_slot(op.slot, i, "unitary")
        elif tp is ChannelOp:
            _verify_channel(w, op, i)
        else:
            w.error("R001", f"unknown op kind {tp.__name__}", op_index=i)

    _verify_epilogue(w)
    return w.diags


def _verify_prep(w: _Walk, op: PrepOp, i: int) -> None:
    if op.node in w.live:
        w.error(
            "R002",
            f"node {op.node} prepared while already live",
            op_index=i, node=op.node,
        )
    elif op.node in w.measured:
        w.error(
            "R002",
            f"node {op.node} re-prepared after being measured",
            op_index=i, node=op.node,
        )
    if op.slot != len(w.live):
        w.error(
            "R002",
            f"preparation of node {op.node} claims slot {op.slot}, but "
            f"appends must land in slot {len(w.live)}",
            op_index=i, node=op.node,
        )
    w.live.append(op.node)
    w.max_live = max(w.max_live, len(w.live))


def _verify_entangle(w: _Walk, op: EntangleOp, i: int) -> None:
    a, b = op.slots
    ok = w.check_slot(a, i, "entangler") & w.check_slot(b, i, "entangler")
    if ok and a == b:
        w.error(
            "R003",
            f"entangler targets slot {a} twice (CZ needs two distinct qubits)",
            op_index=i,
        )


def _verify_measure(w: _Walk, op: MeasureOp, i: int) -> None:
    if op.node in w.measured:
        w.error(
            "R001",
            f"node {op.node} measured twice (second measurement reads a "
            f"discarded qubit)",
            op_index=i, node=op.node,
        )
    if w.check_slot(op.slot, i, "measurement"):
        if w.live[op.slot] != op.node:
            w.error(
                "R004",
                f"measurement of node {op.node} targets slot {op.slot}, "
                f"which holds node {w.live[op.slot]}",
                op_index=i, node=op.node,
            )
        w.live.pop(op.slot)  # compaction: slots above shift down
    w.check_domain(i, "s", op.node, "s-domain")
    w.check_domain(i, "t", op.node, "t-domain")
    if len(op.bases) != 4:
        w.error(
            "R009",
            f"measurement of node {op.node} carries {len(op.bases)} bases; "
            f"the (s, t)-indexed table needs exactly 4",
            op_index=i, node=op.node,
        )
    if op.pauli is not None and len(op.pauli) != 4:
        w.error(
            "R009",
            f"measurement of node {op.node} carries a {len(op.pauli)}-entry "
            f"Pauli table; need 4 (or None)",
            op_index=i, node=op.node,
        )
    if not 0.0 <= op.flip_p <= 1.0:
        w.error(
            "R022",
            f"measurement of node {op.node} has readout flip probability "
            f"{op.flip_p}, outside [0, 1]",
            op_index=i, node=op.node,
        )
    w.measured.add(op.node)
    w.measured_order.append(op.node)


def _verify_conditional(w: _Walk, op: ConditionalOp, i: int) -> None:
    w.check_slot(op.slot, i, "correction")
    if not op.domain:
        w.emit(
            "R011",
            Severity.WARNING,
            f"correction at op {i} has an empty signal domain and can never "
            f"fire; the compiler's dead-code elimination should have "
            f"removed it",
            op_index=i,
        )
    else:
        owner = w.live[op.slot] if 0 <= op.slot < len(w.live) else -1
        w.check_domain(i, "cond", owner, "correction domain")


def _verify_channel(w: _Walk, op: ChannelOp, i: int) -> None:
    try:
        kraus = validate_kraus(op.kraus, where=f"channel {op.label!r}")
    except ValueError as exc:
        w.error("R021", f"op {i}: {exc}", op_index=i)
        return
    arity = kraus[0].shape[0].bit_length() - 1
    if arity != 1:
        w.error(
            "R020",
            f"channel {op.label!r} acts on {arity} qubits, but the lowered "
            f"noise IR applies each channel to a single live slot "
            f"({len(w.live)} live at op {i})",
            op_index=i,
        )
        return
    w.check_slot(op.slot, i, f"channel {op.label!r}")
    if op.pauli_probs is not None:
        probs = op.pauli_probs
        bad_range = len(probs) != 4 or any(
            not 0.0 <= float(p) <= 1.0 + _ATOL for p in probs
        )
        actual = _channel_pauli_probs(kraus)
        if bad_range or actual is None or not np.allclose(
            probs, actual, atol=1e-6
        ):
            w.error(
                "R023",
                f"channel {op.label!r} declares pauli_probs {tuple(probs)} "
                f"but its Kraus operators give "
                f"{actual if actual is not None else 'a non-Pauli channel'}; "
                f"trajectory engines would sample the wrong fault "
                f"distribution",
                op_index=i,
            )


def _verify_epilogue(w: _Walk) -> None:
    """Post-walk consistency: out_perm, max_live, measured_nodes, dead
    signals."""
    compiled = w.compiled

    if w.max_live != compiled.max_live:
        w.error(
            "R005",
            f"compiled.max_live is {compiled.max_live} but the op stream's "
            f"peak register width is {w.max_live}; backend selection and "
            f"byte budgeting would mis-size the register",
        )

    if tuple(w.measured_order) != tuple(compiled.measured_nodes):
        w.error(
            "R007",
            f"compiled.measured_nodes {tuple(compiled.measured_nodes)} does "
            f"not match the MeasureOp stream order "
            f"{tuple(w.measured_order)}",
        )

    _verify_out_perm(w)

    # Advisory: outcomes written but never read by any signal domain.
    for node in w.measured_order:
        if node not in w.liveness.read_nodes:
            w.emit(
                "R012",
                Severity.INFO,
                f"outcome of node {node} is never read by any signal domain",
                node=node,
            )


def _verify_out_perm(w: _Walk) -> None:
    compiled = w.compiled
    perm = compiled.out_perm
    outs = compiled.output_nodes
    if len(perm) != len(outs):
        w.error(
            "R006",
            f"out_perm has {len(perm)} entries for {len(outs)} output nodes",
        )
        return
    seen: Dict[int, int] = {}
    ok = True
    for j, p in enumerate(perm):
        if not 0 <= p < len(w.live):
            w.error(
                "R006",
                f"out_perm[{j}] = {p} is outside the surviving register "
                f"(slots 0..{len(w.live) - 1})",
                node=outs[j],
            )
            ok = False
            continue
        if p in seen:
            w.error(
                "R006",
                f"out_perm maps outputs {outs[seen[p]]} and {outs[j]} to the "
                f"same slot {p}",
                node=outs[j],
            )
            ok = False
            continue
        seen[p] = j
        if w.live[p] != outs[j]:
            w.error(
                "R006",
                f"out_perm[{j}] = {p} holds node {w.live[p]}, not output "
                f"node {outs[j]}",
                node=outs[j],
            )
            ok = False
    if ok and len(w.live) != len(outs):
        leftover = [n for n in w.live if n not in set(outs)]
        w.error(
            "R006",
            f"{len(leftover)} non-output nodes survive unmeasured: "
            f"{leftover[:8]}{'...' if len(leftover) > 8 else ''}",
        )
