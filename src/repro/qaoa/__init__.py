"""Gate-model QAOA (Section II.C of the paper).

Two execution paths:

- :mod:`repro.qaoa.simulator` — fast vectorized evolution
  ``O(p · n · 2^n)``: diagonal phase separator as an elementwise complex
  exponential over the cost vector, mixers as axis-wise rotations.  This is
  the reference QAOA used to verify the MBQC compilation and to run the
  optimization experiments (E6, E9, E10, E11);
- :mod:`repro.qaoa.circuits` — explicit gate circuits (Fig. 2 of the
  paper), the resource baseline of Section III.A (``|V|`` qubits,
  ``2p|E|``+ entangling gates) and the input to the generic circuit→pattern
  compiler.

:mod:`repro.qaoa.optimize` provides grid search and multistart local
optimization of the 2p parameters.
"""

from repro.qaoa.simulator import (
    apply_constrained_mis_mixer,
    apply_x_mixer,
    apply_xy_mixer_pair,
    qaoa_expectation,
    qaoa_state,
    qaoa_state_constrained_mis,
    qaoa_state_xy_ring,
)
from repro.qaoa.circuits import qaoa_circuit, qaoa_gate_counts
from repro.qaoa.optimize import (
    OptimizationResult,
    grid_search_p1,
    optimize_qaoa,
    sample_cost,
)
from repro.qaoa.analytic import maxcut_p1_expectation, maxcut_p1_grid_optimum
from repro.qaoa.iterative import iterative_quantum_optimize, qaoa_correlation_oracle

__all__ = [
    "apply_constrained_mis_mixer",
    "apply_x_mixer",
    "apply_xy_mixer_pair",
    "qaoa_expectation",
    "qaoa_state",
    "qaoa_state_constrained_mis",
    "qaoa_state_xy_ring",
    "qaoa_circuit",
    "qaoa_gate_counts",
    "OptimizationResult",
    "grid_search_p1",
    "optimize_qaoa",
    "sample_cost",
    "maxcut_p1_expectation",
    "maxcut_p1_grid_optimum",
    "iterative_quantum_optimize",
    "qaoa_correlation_oracle",
]
