"""Parameter optimization and sampling for QAOA.

The paper notes (Section II.C) that parameters may come from analytic,
numeric or average-case techniques; here we provide the standard numeric
toolbox: dense grid search at p=1 and multistart local optimization
(Nelder–Mead / COBYLA via scipy) at general p, plus sampling utilities for
approximation ratios and best-solution extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as spopt

from repro.qaoa.simulator import qaoa_expectation, qaoa_state
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class OptimizationResult:
    """Best parameters found and their expectation value (minimization)."""

    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    nfev: int

    @property
    def p(self) -> int:
        return len(self.gammas)


def grid_search_p1(
    cost: np.ndarray,
    gamma_range: Tuple[float, float] = (-np.pi, np.pi),
    beta_range: Tuple[float, float] = (-np.pi / 2, np.pi / 2),
    resolution: int = 24,
    initial: Optional[np.ndarray] = None,
) -> OptimizationResult:
    """Dense 2-D grid search for QAOA_1 (minimizes ``<C>``)."""
    gammas = np.linspace(*gamma_range, resolution)
    betas = np.linspace(*beta_range, resolution)
    best = (np.inf, 0.0, 0.0)
    nfev = 0
    for g in gammas:
        for b in betas:
            val = qaoa_expectation(cost, [g], [b], initial)
            nfev += 1
            if val < best[0]:
                best = (val, g, b)
    return OptimizationResult(
        np.array([best[1]]), np.array([best[2]]), best[0], nfev
    )


def optimize_qaoa(
    cost: np.ndarray,
    p: int,
    restarts: int = 8,
    seed: SeedLike = None,
    method: str = "Nelder-Mead",
    maxiter: int = 400,
    initial: Optional[np.ndarray] = None,
    warm_start: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
) -> OptimizationResult:
    """Multistart local optimization of the 2p QAOA parameters.

    Minimizes the cost expectation.  With ``warm_start`` the previous-depth
    optimum is extended by one interpolated layer (the standard layerwise
    heuristic), which keeps the E10 depth-scaling experiment monotone
    without huge restart counts.
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    rng = ensure_rng(seed)

    def objective(theta: np.ndarray) -> float:
        return qaoa_expectation(cost, theta[:p], theta[p:], initial)

    starts: List[np.ndarray] = []
    if warm_start is not None:
        g0, b0 = np.asarray(warm_start[0]), np.asarray(warm_start[1])
        if len(g0) == p - 1:
            g0 = np.concatenate([g0, g0[-1:] if len(g0) else [0.1]])
            b0 = np.concatenate([b0, b0[-1:] if len(b0) else [0.1]])
        if len(g0) == p:
            starts.append(np.concatenate([g0, b0]))
    for _ in range(restarts):
        starts.append(
            np.concatenate(
                [rng.uniform(-np.pi, np.pi, p), rng.uniform(-np.pi / 2, np.pi / 2, p)]
            )
        )

    best: Optional[spopt.OptimizeResult] = None
    nfev = 0
    for x0 in starts:
        res = spopt.minimize(objective, x0, method=method, options={"maxiter": maxiter})
        nfev += int(res.nfev)
        if best is None or res.fun < best.fun:
            best = res
    assert best is not None
    theta = best.x
    return OptimizationResult(theta[:p].copy(), theta[p:].copy(), float(best.fun), nfev)


def sample_cost(
    cost: np.ndarray,
    gammas: Sequence[float],
    betas: Sequence[float],
    shots: int = 1024,
    seed: SeedLike = None,
    initial: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample computational-basis outcomes from the QAOA state.

    Returns ``(samples, costs)``: sampled basis indices and their costs —
    the paper's repeated state preparation + measurement loop.
    """
    psi = qaoa_state(cost, gammas, betas, initial)
    probs = np.abs(psi) ** 2
    probs = probs / probs.sum()
    rng = ensure_rng(seed)
    samples = rng.choice(probs.size, size=shots, p=probs)
    return samples, cost[samples]


def best_sampled_solution(
    cost: np.ndarray,
    gammas: Sequence[float],
    betas: Sequence[float],
    shots: int = 1024,
    seed: SeedLike = None,
) -> Tuple[int, float]:
    """Best (lowest-cost) sample — the value QAOA actually returns."""
    samples, costs = sample_cost(cost, gammas, betas, shots=shots, seed=seed)
    i = int(np.argmin(costs))
    return int(samples[i]), float(costs[i])
