"""Iterative quantum optimization (Section V of the paper; refs [56], [60],
[61]): "the quantum device is used to estimate a set of observable
expectation values ... used to select a reduction step ... and the process
iterated until the residual problem is small enough to be solved exactly."

This is the RQAOA-style loop: at each round, run (simulated) QAOA_p on the
current Ising model, read off the two-point correlations ``<Z_u Z_v>`` on
the coupling graph (and single ``<Z_u>`` when fields exist), then *freeze*
the strongest one — substituting ``s_v = σ s_u`` (or ``s_u = σ``) —
producing a strictly smaller Ising model.  The residual is brute-forced and
the substitutions unwound.

The expectation-value oracle is pluggable, mirroring the paper's remark
that the values could come from "a quantum circuit such as QAOA or other
solvers such as quantum annealers or MBQC approaches [61]".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.problems.qubo import IsingModel
from repro.qaoa.optimize import grid_search_p1, optimize_qaoa
from repro.qaoa.simulator import qaoa_state
from repro.utils.rng import SeedLike, ensure_rng

# An oracle maps an Ising model to (edge correlations, single-spin means).
CorrelationOracle = Callable[
    [IsingModel], Tuple[Dict[Tuple[int, int], float], Dict[int, float]]
]


def qaoa_correlation_oracle(
    p: int = 1, restarts: int = 4, seed: SeedLike = 0, grid_resolution: int = 20
) -> CorrelationOracle:
    """Correlations from an optimized QAOA_p state (simulated exactly)."""
    rng = ensure_rng(seed)

    def oracle(ising: IsingModel):
        n = ising.num_spins
        cost = ising.energy_vector()
        if p == 1:
            res = grid_search_p1(cost, resolution=grid_resolution)
        else:
            res = optimize_qaoa(cost, p=p, restarts=restarts, seed=rng)
        psi = qaoa_state(cost, res.gammas, res.betas)
        probs = np.abs(psi) ** 2
        idx = np.arange(probs.size)
        spins = 1.0 - 2.0 * ((idx[:, None] >> np.arange(n)) & 1)
        means = {i: float(probs @ spins[:, i]) for i in ising.fields}
        corrs = {
            (u, v): float(probs @ (spins[:, u] * spins[:, v]))
            for (u, v) in ising.couplings
        }
        return corrs, means

    return oracle


def mbqc_correlation_oracle(
    p: int = 1,
    shots: int = 512,
    runs_per_batch: int = 4,
    grid_resolution: int = 12,
    seed: SeedLike = 0,
) -> CorrelationOracle:
    """Correlations estimated by *sampling executed measurement patterns* —
    the paper's Section V remark that iterative-optimization expectation
    values can come from "MBQC approaches [61]" made literal.

    Parameters are optimized on the exact landscape (cheap at these sizes),
    then ``shots`` samples are drawn from MBQC pattern executions and the
    two-point functions estimated empirically.
    """
    from repro.core.solver import MBQCQAOASolver

    rng = ensure_rng(seed)

    def oracle(ising: IsingModel):
        cost = ising.energy_vector()
        res = grid_search_p1(cost, resolution=grid_resolution) if p == 1 else optimize_qaoa(
            cost, p=p, restarts=3, seed=rng
        )
        solver = MBQCQAOASolver(
            ising, p=p, shots=shots, runs_per_batch=runs_per_batch, seed=rng
        )
        batch = solver.sample(res.gammas, res.betas)
        n = ising.num_spins
        bits = (batch.bitstrings[:, None] >> np.arange(n)) & 1
        spins = 1.0 - 2.0 * bits
        means = {i: float(spins[:, i].mean()) for i in ising.fields}
        corrs = {
            (u, v): float((spins[:, u] * spins[:, v]).mean())
            for (u, v) in ising.couplings
        }
        return corrs, means

    return oracle


@dataclass
class ReductionStep:
    """One variable elimination: ``kind`` is 'edge' (s_v := sign·s_u) or
    'field' (s_v := sign)."""

    kind: str
    u: Optional[int]
    v: int
    sign: int
    strength: float


def _contract_edge(ising: IsingModel, u: int, v: int, sign: int) -> IsingModel:
    """Substitute ``s_v = sign * s_u`` and eliminate variable ``v``.

    Variable indices are preserved (the model keeps ``num_spins`` but ``v``
    becomes disconnected); callers track active variables separately.
    """
    couplings: Dict[Tuple[int, int], float] = {}
    fields: Dict[int, float] = dict(ising.fields)
    offset = ising.offset

    def add_coupling(a: int, b: int, w: float) -> None:
        if a == b:
            # s_a^2 = 1: constant.
            nonlocal offset
            offset += w
            return
        key = (a, b) if a < b else (b, a)
        couplings[key] = couplings.get(key, 0.0) + w

    for (a, b), w in ising.couplings.items():
        a2 = u if a == v else a
        b2 = u if b == v else b
        w2 = w * (sign if (a == v or b == v) else 1)
        add_coupling(a2, b2, w2)
    if v in fields:
        fields[u] = fields.get(u, 0.0) + sign * fields.pop(v)
    couplings = {k: w for k, w in couplings.items() if w != 0.0}
    fields = {i: h for i, h in fields.items() if h != 0.0}
    return IsingModel(ising.num_spins, couplings, fields, offset)


def _fix_spin(ising: IsingModel, v: int, sign: int) -> IsingModel:
    """Substitute ``s_v = sign`` and eliminate variable ``v``."""
    couplings: Dict[Tuple[int, int], float] = {}
    fields: Dict[int, float] = {}
    offset = ising.offset
    for (a, b), w in ising.couplings.items():
        if a == v:
            fields[b] = fields.get(b, 0.0) + sign * w
        elif b == v:
            fields[a] = fields.get(a, 0.0) + sign * w
        else:
            key = (a, b)
            couplings[key] = couplings.get(key, 0.0) + w
    for i, h in ising.fields.items():
        if i == v:
            offset += sign * h
        else:
            fields[i] = fields.get(i, 0.0) + h
    fields = {i: h for i, h in fields.items() if h != 0.0}
    return IsingModel(ising.num_spins, couplings, fields, offset)


@dataclass
class IterativeResult:
    """Outcome of the iterative solver."""

    spins: List[int]
    energy: float
    steps: List[ReductionStep]

    def bits(self) -> List[int]:
        """Binary assignment via ``x = (1 − s)/2``."""
        return [(1 - s) // 2 for s in self.spins]


def iterative_quantum_optimize(
    ising: IsingModel,
    oracle: Optional[CorrelationOracle] = None,
    stop_at: int = 4,
) -> IterativeResult:
    """Minimize ``ising`` by iterated correlation-guided elimination.

    ``stop_at``: brute-force threshold on the number of *active* variables.
    Returns the full spin assignment and its energy (exact bookkeeping: the
    reduced models carry offsets so the reported energy is the true one).
    """
    if stop_at < 1:
        raise ValueError("stop_at must be positive")
    oracle = oracle or qaoa_correlation_oracle()
    active = sorted(
        set(i for e in ising.couplings for i in e) | set(ising.fields)
    ) or [0]
    current = ising
    steps: List[ReductionStep] = []

    while len(active) > stop_at and (current.couplings or current.fields):
        corrs, means = oracle(current)
        best: Optional[ReductionStep] = None
        for (u, v), c in corrs.items():
            if best is None or abs(c) > best.strength:
                best = ReductionStep("edge", u, v, 1 if c >= 0 else -1, abs(c))
        for v, m in means.items():
            if best is None or abs(m) > best.strength:
                best = ReductionStep("field", None, v, 1 if m >= 0 else -1, abs(m))
        if best is None or best.strength == 0.0:
            break  # flat landscape: nothing informative to freeze
        if best.kind == "edge":
            current = _contract_edge(current, best.u, best.v, best.sign)
        else:
            current = _fix_spin(current, best.v, best.sign)
        steps.append(best)
        active = [a for a in active if a != best.v]

    # Brute-force the residual over the active variables.
    n = ising.num_spins
    spins = np.ones(n, dtype=np.int64)
    if active:
        best_energy = np.inf
        best_assign = None
        k = len(active)
        for bits in range(1 << k):
            trial = spins.copy()
            for j, var in enumerate(active):
                trial[var] = 1 - 2 * ((bits >> j) & 1)
            e = current.energy(list(trial))
            if e < best_energy:
                best_energy = e
                best_assign = trial
        spins = best_assign

    # Unwind substitutions (in reverse order).
    for step in reversed(steps):
        if step.kind == "edge":
            spins[step.v] = step.sign * spins[step.u]
        else:
            spins[step.v] = step.sign
    return IterativeResult(list(int(s) for s in spins), float(ising.energy(list(int(s) for s in spins))), steps)
