"""Fast vectorized QAOA simulation.

State is a flat little-endian complex vector of length ``2^n``.  One QAOA
layer is

    ``|ψ> ← U_M(β) · e^{-iγ C} |ψ>``

with the diagonal phase separator applied as an elementwise multiply by
``exp(-iγ c)`` (``c`` the precomputed cost vector) and the transverse-field
mixer ``U_M(β) = Π_v RX(2β)_v`` applied axis-by-axis with views — no
``2^n × 2^n`` operator is ever formed (hpc guides: vectorize, avoid copies).

Alternative mixers (Sections IV–V):

- :func:`apply_xy_mixer_pair` — ``e^{-iβ(XX+YY)/ ...}`` convention below —
  rotates amplitude inside the ``{|01>, |10>}`` block of a qubit pair,
  preserving Hamming weight (one-hot feasibility);
- :func:`apply_constrained_mis_mixer` — the paper's Section IV partial
  mixer ``U_v(β) = Λ_{N(v)}(e^{iβX_v})``, applied as a masked axis rotation
  (rows where all neighbor bits are 0).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.problems.mis import MaximumIndependentSet
from repro.utils.bits import bitstring_to_int


def _num_qubits(psi: np.ndarray) -> int:
    n = int(np.round(np.log2(psi.size)))
    if psi.size != 1 << n:
        raise ValueError("state length must be a power of two")
    return n


def plus_state(n: int) -> np.ndarray:
    """``|+>^n`` as a flat vector."""
    return np.full(1 << n, 1.0 / np.sqrt(1 << n), dtype=complex)


def basis_state(bits: Sequence[int]) -> np.ndarray:
    v = np.zeros(1 << len(bits), dtype=complex)
    v[bitstring_to_int(bits)] = 1.0
    return v


def apply_phase_separator(psi: np.ndarray, cost: np.ndarray, gamma: float) -> np.ndarray:
    """``e^{-iγ C}`` with C = diag(cost); in-place on a copy-free path."""
    if cost.shape != psi.shape:
        raise ValueError("cost vector length mismatch")
    psi *= np.exp(-1j * gamma * cost)
    return psi


def apply_rx(psi: np.ndarray, qubit: int, theta: float) -> np.ndarray:
    """``RX(theta)`` on one qubit of a flat state, via views."""
    n = _num_qubits(psi)
    if not 0 <= qubit < n:
        raise ValueError("qubit out of range")
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    # Reshape so the target bit is the middle axis: little-endian bit q
    # varies with period 2^q.
    m = psi.reshape(1 << (n - qubit - 1), 2, 1 << qubit)
    a = m[:, 0, :].copy()
    b = m[:, 1, :]
    m[:, 0, :] = c * a - 1j * s * b
    m[:, 1, :] = c * b - 1j * s * a
    return psi


def apply_x_mixer(psi: np.ndarray, beta: float) -> np.ndarray:
    """``U_M(β) = e^{-iβ Σ X_v} = Π_v RX(2β)_v`` (the paper's mixer)."""
    n = _num_qubits(psi)
    for q in range(n):
        apply_rx(psi, q, 2.0 * beta)
    return psi


def qaoa_state(
    cost: np.ndarray,
    gammas: Sequence[float],
    betas: Sequence[float],
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The QAOA_p state ``U_M(β_p) U_P(γ_p) … U_M(β_1) U_P(γ_1) |+>^n``."""
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    n = _num_qubits(cost)
    psi = plus_state(n) if initial is None else initial.astype(complex).copy()
    if psi.shape != cost.shape:
        raise ValueError("initial state length mismatch")
    for gamma, beta in zip(gammas, betas):
        apply_phase_separator(psi, cost, gamma)
        apply_x_mixer(psi, beta)
    return psi


def qaoa_expectation(
    cost: np.ndarray,
    gammas: Sequence[float],
    betas: Sequence[float],
    initial: Optional[np.ndarray] = None,
) -> float:
    """``<γβ| C |γβ>`` for the diagonal cost operator."""
    psi = qaoa_state(cost, gammas, betas, initial)
    return float(np.real(np.vdot(psi, cost * psi)))


# -- XY mixers (Section V) ---------------------------------------------------

def apply_xy_mixer_pair(psi: np.ndarray, q0: int, q1: int, beta: float) -> np.ndarray:
    """``e^{iβ(X_u X_v + Y_u Y_v)}`` on a flat state (paper's convention).

    Acts only on the odd-parity block: ``|01>,|10>`` pick up the 2x2
    rotation ``[[cos 2β, i sin 2β], [i sin 2β, cos 2β]]``; ``|00>,|11>``
    are fixed — hence Hamming weight is preserved.
    """
    n = _num_qubits(psi)
    if q0 == q1 or not (0 <= q0 < n and 0 <= q1 < n):
        raise ValueError("bad qubit pair")
    idx = np.arange(psi.size)
    b0 = (idx >> q0) & 1
    b1 = (idx >> q1) & 1
    sel01 = (b0 == 1) & (b1 == 0)  # x_{q0}=1, x_{q1}=0
    partner = idx[sel01] ^ (1 << q0) ^ (1 << q1)
    c, s = np.cos(2.0 * beta), np.sin(2.0 * beta)
    a = psi[sel01].copy()
    b = psi[partner].copy()
    psi[sel01] = c * a + 1j * s * b
    psi[partner] = c * b + 1j * s * a
    return psi


def qaoa_state_xy_ring(
    cost: np.ndarray,
    gammas: Sequence[float],
    betas: Sequence[float],
    blocks: Sequence[Sequence[int]],
    initial: np.ndarray,
) -> np.ndarray:
    """QAOA with ring-XY partial mixers applied block-wise (one-hot
    encodings, Section V): within each block, XY mixers on the ring pairs
    ``(b_i, b_{i+1 mod k})``."""
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    psi = initial.astype(complex).copy()
    for gamma, beta in zip(gammas, betas):
        apply_phase_separator(psi, cost, gamma)
        for block in blocks:
            k = len(block)
            for i in range(k):
                apply_xy_mixer_pair(psi, block[i], block[(i + 1) % k], beta)
    return psi


# -- MIS constrained mixer (Section IV) ----------------------------------------

def apply_constrained_mis_mixer(
    psi: np.ndarray, vertex: int, neighbors: Iterable[int], beta: float
) -> np.ndarray:
    """The paper's partial mixer ``U_v(β) = Λ_{N(v)}(e^{iβX_v})``: rotate
    qubit ``vertex`` by ``e^{iβX}`` on exactly the rows where every
    neighbor bit is 0."""
    n = _num_qubits(psi)
    idx = np.arange(psi.size)
    free = np.ones(psi.size, dtype=bool)
    for w in neighbors:
        if not 0 <= w < n or w == vertex:
            raise ValueError("bad neighborhood")
        free &= ((idx >> w) & 1) == 0
    sel0 = free & (((idx >> vertex) & 1) == 0)
    partner = idx[sel0] | (1 << vertex)
    # e^{iβX} = [[cos β, i sin β], [i sin β, cos β]]
    c, s = np.cos(beta), np.sin(beta)
    a = psi[sel0].copy()
    b = psi[partner].copy()
    psi[sel0] = c * a + 1j * s * b
    psi[partner] = c * b + 1j * s * a
    return psi


def qaoa_state_constrained_mis(
    problem: MaximumIndependentSet,
    gammas: Sequence[float],
    betas: Sequence[float],
    initial: np.ndarray,
    sweeps: int = 1,
) -> np.ndarray:
    """MIS-QAOA in the quantum alternating operator ansatz (Section IV).

    Phase operator: ``e^{-iγ C}`` with ``C = -Σ x_v`` (maximize set size;
    diagonal, single-qubit Z rotations only — as the paper notes, the MIS
    phase layer needs no entangling structure).  Mixer: ordered product of
    partial mixers ``U_v(β)`` over all vertices, repeated ``sweeps`` times.
    The initial state must be supported on independent sets.
    """
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    n = problem.num_vertices
    cost = -problem.size_vector()
    psi = initial.astype(complex).copy()
    if psi.size != 1 << n:
        raise ValueError("initial state size mismatch")
    nbrs = {v: problem.neighborhood(v) for v in range(n)}
    for gamma, beta in zip(gammas, betas):
        apply_phase_separator(psi, cost, gamma)
        for _ in range(sweeps):
            for v in range(n):
                apply_constrained_mis_mixer(psi, v, nbrs[v], beta)
    return psi
