"""Explicit QAOA gate circuits (Fig. 2 of the paper).

``qaoa_circuit`` compiles QAOA_p for an Ising cost Hamiltonian to the gate
set ``{H, RZ, RZZ(=CNOT·RZ·CNOT), RX}`` exactly as in the paper's Fig. 2,
including the initial-state preparation layer.  The entangling-gate count of
the result is the Section III.A gate-model baseline: ``2p|E|`` CNOTs from
standard RZZ compilation.

Convention link: our RZZ/RZ carry angle ``2γJ`` / ``2γh`` so that the
circuit implements ``e^{-iγC}`` with ``C = Σ J Z Z + Σ h Z`` exactly
(``e^{-iγ J Z⊗Z} = RZZ(2γJ)``), and the mixer ``e^{-iβΣX} = Π RX(2β)``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.problems.qubo import QUBO, IsingModel
from repro.sim.circuit import Circuit


def qaoa_circuit(
    ising: IsingModel,
    gammas: Sequence[float],
    betas: Sequence[float],
    include_initial_layer: bool = True,
) -> Circuit:
    """Build the QAOA_p circuit for ``ising`` (offset ignored: global phase).

    The state it prepares from ``|0...0>`` equals
    :func:`repro.qaoa.simulator.qaoa_state` on the Ising energy vector, up
    to global phase.
    """
    if len(gammas) != len(betas):
        raise ValueError("need equally many gammas and betas")
    n = ising.num_spins
    c = Circuit(n)
    if include_initial_layer:
        for q in range(n):
            c.h(q)
    for gamma, beta in zip(gammas, betas):
        for (u, v), w in sorted(ising.couplings.items()):
            c.rzz(u, v, 2.0 * gamma * w)
        for i, h in sorted(ising.fields.items()):
            c.rz(i, 2.0 * gamma * h)
        for q in range(n):
            c.rx(q, 2.0 * beta)
    return c


def qaoa_circuit_from_qubo(
    qubo: QUBO, gammas: Sequence[float], betas: Sequence[float]
) -> Circuit:
    """Convenience: Ising-convert then build (Fig. 2 pipeline)."""
    return qaoa_circuit(qubo.to_ising(), gammas, betas)


def qaoa_gate_counts(ising: IsingModel, p: int) -> Dict[str, int]:
    """Gate-model resource counts for QAOA_p (Section III.A baseline).

    Returns logical qubits, entangling gates (2 CNOTs per RZZ), and
    single-qubit rotations.
    """
    if p < 0:
        raise ValueError("p must be non-negative")
    e = len(ising.couplings)
    v = ising.num_spins
    lin = len(ising.fields)
    return {
        "qubits": v,
        "entangling_gates": 2 * p * e,
        "rz_gates": p * (e + lin),
        "rx_gates": p * v,
        "h_gates": v,
    }
