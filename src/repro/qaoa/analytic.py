"""Analytic QAOA_1 expectation values for MaxCut (ref. [40] of the paper:
Wang, Hadfield, Jiang, Rieffel, PRA 97, 022304 (2018)).

For an unweighted graph and the standard QAOA_1 state with our conventions
(``U_P = e^{-iγC_min}`` on the minimization cost ``C_min = -cut``, mixer
``e^{-iβΣX}``), the expected *cut* contribution of edge ``(u,v)`` is

    ``<C_uv> = 1/2 + (1/4) sin(4β) sin(γ) (cos^{d_u}γ + cos^{d_v}γ)
               − (1/4) sin^2(2β) cos^{d_u+d_v−2λ}γ (1 − cos^λ(2γ))``

with ``d_u = deg(u)−1``, ``d_v = deg(v)−1`` and ``λ`` the number of
triangles containing the edge.  The sign conventions are pinned against the
simulator in ``tests/test_qaoa_analytic.py`` — the formula's γ matches the
γ passed to :func:`repro.qaoa.simulator.qaoa_state` on
``MaxCut.to_qubo().cost_vector()`` directly.

This gives the paper's "analytic [40]" parameter-setting route: closed-form
p=1 landscapes, gradient-free optima for rings, and a fast surrogate for
large graphs (evaluation is O(|E|), no 2^n vectors).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.problems.maxcut import MaxCut


def _edge_stats(problem: MaxCut) -> List[Tuple[int, int, int, int, int]]:
    """(u, v, d_u, d_v, triangles) per edge, with d = degree − 1."""
    nbrs: Dict[int, set] = {v: set() for v in range(problem.num_vertices)}
    for u, v in problem.edges:
        nbrs[u].add(v)
        nbrs[v].add(u)
    out = []
    for u, v in problem.edges:
        tri = len(nbrs[u] & nbrs[v])
        out.append((u, v, len(nbrs[u]) - 1, len(nbrs[v]) - 1, tri))
    return out


def maxcut_p1_expectation(problem: MaxCut, gamma: float, beta: float) -> float:
    """Closed-form ``<cut>`` of the QAOA_1 state (unweighted graphs only)."""
    if problem.weights is not None:
        raise ValueError("the closed form covers unweighted MaxCut only")
    # Convention bridge: ref. [40] phases with e^{-iγ·cut}; our simulator
    # minimizes cost = -cut, i.e. applies e^{+iγ·cut}, so flip γ here (only
    # the sin γ cross-term is odd in γ — verified against the simulator).
    gamma = -gamma
    total = 0.0
    s4b = np.sin(4.0 * beta)
    s2b2 = np.sin(2.0 * beta) ** 2
    sg, cg = np.sin(gamma), np.cos(gamma)
    c2g = np.cos(2.0 * gamma)
    for _, _, du, dv, lam in _edge_stats(problem):
        term1 = 0.25 * s4b * sg * (cg**du + cg**dv)
        term2 = 0.25 * s2b2 * (cg ** (du + dv - 2 * lam)) * (1.0 - c2g**lam)
        total += 0.5 + term1 - term2
    return float(total)


def maxcut_p1_grid_optimum(
    problem: MaxCut, resolution: int = 64
) -> Tuple[float, float, float]:
    """Dense grid maximization of the closed form; returns
    ``(best_cut_expectation, gamma, beta)`` — O(|E|·resolution²), usable at
    graph sizes far beyond statevector reach."""
    best = (-np.inf, 0.0, 0.0)
    for gamma in np.linspace(-np.pi, np.pi, resolution):
        for beta in np.linspace(-np.pi / 2, np.pi / 2, resolution):
            val = maxcut_p1_expectation(problem, gamma, beta)
            if val > best[0]:
                best = (val, float(gamma), float(beta))
    return best


def ring_p1_optimum(n: int) -> float:
    """The known analytic optimum for even rings at p=1: ``3|E|/4``
    (approximation ratio 3/4); odd rings approach it from below."""
    if n < 3:
        raise ValueError("ring needs at least 3 vertices")
    return 0.75 * n
