"""repro — Measurement-Based Quantum Approximate Optimization.

A full-stack reproduction of Stollenwerk & Hadfield, *Measurement-Based
Quantum Approximate Optimization* (IPPS 2024, arXiv:2403.11514): a
ZX-calculus engine, an MBQC measurement-calculus runtime, gate-model QAOA,
and — the paper's contribution — a compiler that turns QAOA on arbitrary
QUBO (and constrained) problems into deterministic measurement patterns on
graph states, with resource accounting.

Quickstart::

    from repro import maxcut, compile_qaoa_pattern, run_pattern
    problem = maxcut.MaxCut.ring(5)
    pattern = compile_qaoa_pattern(problem.to_qubo(), gammas=[0.4], betas=[0.7])
    state = run_pattern(pattern, seed=7)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.

The subpackage imports below are intentionally lazy-tolerant during the
bootstrap of the package itself; all public names are re-exported here.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

# Re-exports are appended as subsystems come online; guarded so that partial
# installs (e.g. docs builds) still import the package metadata.
try:  # pragma: no cover - import plumbing
    from repro.analysis import analyze
    from repro.core.compiler import compile_qaoa_pattern
    from repro.core.resources import ResourceReport, estimate_resources
    from repro.mbqc.runner import run_pattern
    from repro.problems import maxcut, mis, qubo
    from repro.qaoa.simulator import qaoa_expectation, qaoa_state

    __all__ += [
        "analyze",
        "compile_qaoa_pattern",
        "ResourceReport",
        "estimate_resources",
        "run_pattern",
        "maxcut",
        "mis",
        "qubo",
        "qaoa_expectation",
        "qaoa_state",
    ]
except ImportError:  # pragma: no cover
    pass
