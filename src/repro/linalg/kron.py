"""Kronecker-product helpers for embedding small operators in n-qubit space.

These build *dense* operators and are meant for verification at small n
(the simulators in :mod:`repro.sim` never materialize full operators).
Little-endian convention throughout: qubit ``i`` is tensor factor ``i``
counted from the *right* of the Kronecker product, so that basis index
``x = sum_i x_i 2**i``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def kron_all(factors: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product with factor 0 acting on qubit 0 (little-endian).

    ``kron_all([A, B])`` acts as A on qubit 0 and B on qubit 1, i.e. equals
    ``np.kron(B, A)`` in numpy's big-endian kron ordering.
    """
    out = np.eye(1, dtype=complex)
    for f in factors:
        out = np.kron(f, out)
    return out


def operator_on_qubits(
    op: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Embed ``op`` (acting on ``len(qubits)`` qubits, little-endian among
    themselves) into an ``n``-qubit dense operator.

    Implemented by permuting tensor axes rather than building permutation
    matrices: reshape to ``(2,)*2n``, move the target axes into place.
    """
    k = len(qubits)
    if op.shape != (1 << k, 1 << k):
        raise ValueError(f"operator shape {op.shape} does not match {k} qubits")
    if len(set(qubits)) != k:
        raise ValueError("duplicate qubits")
    if any(q < 0 or q >= n for q in qubits):
        raise ValueError("qubit index out of range")

    full = np.kron(np.eye(1 << (n - k), dtype=complex), op)
    # ``full`` acts on qubits (0..k-1) = op targets, (k..n-1) = identity.
    # Permute so target j goes to qubits[j].  Tensor axes: row axes are
    # (n-1..0) big-endian after reshape, so convert carefully: reshape with
    # little-endian axis order by reversing.
    tensor = full.reshape((2,) * (2 * n))
    # Axis layout after reshape: row bits big-endian (qubit n-1 first) then
    # column bits big-endian.  Map: row axis for qubit q is (n-1-q), column
    # axis for qubit q is n + (n-1-q).
    perm = list(range(2 * n))
    placement = list(qubits) + [q for q in range(n) if q not in qubits]
    # qubit placement[j] in the output corresponds to qubit j of ``full``.
    for j, q in enumerate(placement):
        perm[n - 1 - q] = n - 1 - j
        perm[2 * n - 1 - q] = 2 * n - 1 - j
    tensor = tensor.transpose(perm)
    return tensor.reshape(1 << n, 1 << n)
