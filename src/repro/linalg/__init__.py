"""Dense linear-algebra substrate: gates, Pauli algebra, comparisons.

Everything in the ZX/MBQC verification chain bottoms out here: diagram
tensors, pattern branch unitaries and circuit unitaries are compared with the
global-phase-insensitive helpers in :mod:`repro.linalg.compare`.
"""

from repro.linalg.compare import (
    allclose_up_to_global_phase,
    global_phase_between,
    proportionality_factor,
)
from repro.linalg.gates import (
    CNOT,
    CZ,
    HADAMARD,
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    SWAP,
    S_GATE,
    T_GATE,
    controlled,
    j_gate,
    phase_gate,
    rx,
    ry,
    rz,
)
from repro.linalg.kron import kron_all, operator_on_qubits
from repro.linalg.paulis import PauliString, pauli_matrix

__all__ = [
    "allclose_up_to_global_phase",
    "global_phase_between",
    "proportionality_factor",
    "CNOT",
    "CZ",
    "HADAMARD",
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "SWAP",
    "S_GATE",
    "T_GATE",
    "controlled",
    "j_gate",
    "phase_gate",
    "rx",
    "ry",
    "rz",
    "kron_all",
    "operator_on_qubits",
    "PauliString",
    "pauli_matrix",
]
