"""Standard gate matrices with the conventions fixed in DESIGN.md.

``RZ(t) = diag(e^{-it/2}, e^{it/2})`` and analogously for RX/RY; the paper's
``e^{i a Z}`` operators correspond to ``rz(-2a)`` up to global phase.  The
``J(a) = H RZ(a)`` gate is the native MBQC primitive (one gate per measured
qubit in a cluster-state computation).
"""

from __future__ import annotations

import numpy as np

IDENTITY = np.eye(2, dtype=complex)
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)

# Two-qubit gates in little-endian ordering: for a matrix acting on qubits
# (q0, q1), the 4-dim basis index is x_q0 + 2*x_q1.  CNOT below has q0 as
# control, q1 as target.
CZ = np.diag([1, 1, 1, -1]).astype(complex)
CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
    ],
    dtype=complex,
)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


def rx(theta: float) -> np.ndarray:
    """``exp(-i theta X / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """``exp(-i theta Y / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """``exp(-i theta Z / 2)``."""
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def phase_gate(theta: float) -> np.ndarray:
    """``diag(1, e^{i theta})`` — RZ up to global phase."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def j_gate(alpha: float) -> np.ndarray:
    """The MBQC-native ``J(alpha) = H RZ(alpha)`` gate.

    A single cluster-state measurement implements J; any single-qubit
    unitary factors into at most three J's, and ``J(a)J(0) = RX(a)``,
    ``J(0)J(a) = RZ(a)`` up to global phase.
    """
    return HADAMARD @ rz(alpha)


def controlled(unitary: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Embed ``unitary`` as a multi-controlled gate.

    Little-endian: controls occupy the *low* qubit slots, the target block
    sits at indices where all control bits are 1.  Used for the MIS partial
    mixer ``Lambda_{N(v)}(e^{i beta X_v})`` reference unitary.
    """
    if num_controls < 0:
        raise ValueError("num_controls must be non-negative")
    dim = unitary.shape[0]
    if unitary.shape != (dim, dim):
        raise ValueError("unitary must be square")
    full = np.eye(dim << num_controls, dtype=complex)
    # Basis index = c + (2**k) * t with c the control bits, t the target part:
    # select rows/cols where c == all-ones.
    mask = (1 << num_controls) - 1
    idx = [c + (t << num_controls) for t in range(dim) for c in [mask]]
    full[np.ix_(idx, idx)] = unitary
    return full
