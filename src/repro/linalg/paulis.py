"""Pauli strings with phase tracking.

A :class:`PauliString` is an element of the n-qubit Pauli group up to the
phases ``{+1, -1, +i, -i}``.  Multiplication, commutation checks and dense
realization are provided; the stabilizer simulator uses its own packed
representation, so this class optimizes for clarity over speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.linalg.gates import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z
from repro.linalg.kron import kron_all

_MATS = {"I": IDENTITY, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}

# Single-qubit multiplication table: (a, b) -> (phase, c) with a.b = phase*c.
_MUL: Dict[Tuple[str, str], Tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("Y", "I"): (1, "Y"), ("Z", "I"): (1, "Z"),
    ("X", "X"): (1, "I"), ("Y", "Y"): (1, "I"), ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"), ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"), ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"), ("X", "Z"): (-1j, "Y"),
}


@dataclass(frozen=True)
class PauliString:
    """Phase times a tensor product of single-qubit Paulis.

    ``ops`` maps qubit index -> one of 'X', 'Y', 'Z' (identity positions are
    simply absent); ``phase`` is one of ``+1, -1, +1j, -1j``.
    """

    ops: Mapping[int, str]
    phase: complex = 1.0

    def __post_init__(self) -> None:
        for q, p in self.ops.items():
            if p not in ("X", "Y", "Z"):
                raise ValueError(f"invalid Pauli {p!r} on qubit {q}")
        if self.phase not in (1, -1, 1j, -1j):
            raise ValueError(f"invalid phase {self.phase!r}")
        object.__setattr__(self, "ops", dict(self.ops))

    @staticmethod
    def identity() -> "PauliString":
        return PauliString({}, 1)

    @staticmethod
    def single(qubit: int, pauli: str, phase: complex = 1.0) -> "PauliString":
        return PauliString({qubit: pauli}, phase)

    def __mul__(self, other: "PauliString") -> "PauliString":
        ops: Dict[int, str] = dict(self.ops)
        phase = self.phase * other.phase
        for q, p in other.ops.items():
            a = ops.get(q, "I")
            ph, c = _MUL[(a, p)]
            phase *= ph
            if c == "I":
                ops.pop(q, None)
            else:
                ops[q] = c
        # Normalize phase representation to exact unit values.
        phase = {1: 1, -1: -1, 1j: 1j, -1j: -1j}[complex(np.round(phase.real), np.round(phase.imag))]
        return PauliString(ops, phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """True iff the strings commute (anticommute on an even number of sites)."""
        anti = 0
        for q, p in self.ops.items():
            o = other.ops.get(q)
            if o is not None and o != p:
                anti += 1
        return anti % 2 == 0

    def weight(self) -> int:
        """Number of non-identity sites."""
        return len(self.ops)

    def to_matrix(self, n: int) -> np.ndarray:
        """Dense ``2**n x 2**n`` realization (little-endian)."""
        if self.ops and max(self.ops) >= n:
            raise ValueError("qubit index out of range")
        factors = [_MATS[self.ops.get(q, "I")] for q in range(n)]
        return self.phase * kron_all(factors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = " ".join(f"{p}{q}" for q, p in sorted(self.ops.items())) or "I"
        sign = {1: "+", -1: "-", 1j: "+i", -1j: "-i"}[self.phase]
        return f"{sign}{body}"


def pauli_matrix(label: str) -> np.ndarray:
    """Single-qubit Pauli matrix by label ('I', 'X', 'Y', 'Z')."""
    try:
        return _MATS[label]
    except KeyError:
        raise ValueError(f"unknown Pauli label {label!r}") from None
