"""Global-phase-insensitive comparisons.

ZX-diagram semantics and MBQC branch outputs are defined up to a nonzero
scalar; every equivalence claim in the paper ("∝" in Eqs. 6-12) is checked
through these helpers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def proportionality_factor(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-9
) -> Optional[complex]:
    """Return scalar ``c`` with ``a ≈ c * b``, or ``None`` if no such scalar.

    Handles zero arrays: two (near-)zero arrays are proportional with c=1,
    a zero vs nonzero pair is not.
    """
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return None
    na = np.abs(a).max() if a.size else 0.0
    nb = np.abs(b).max() if b.size else 0.0
    if na < atol and nb < atol:
        return 1.0 + 0.0j
    if na < atol or nb < atol:
        return None
    # Pick the largest entry of b as the anchor to minimize error blowup.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    c = a[idx] / b[idx]
    if np.allclose(a, c * b, atol=atol * max(na, nb), rtol=0):
        return complex(c)
    return None


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-9
) -> bool:
    """True iff ``a = e^{i phi} b`` for some phase (unit-modulus scalar)."""
    c = proportionality_factor(a, b, atol=atol)
    if c is None:
        return False
    return abs(abs(c) - 1.0) < 1e-6


def global_phase_between(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> complex:
    """The phase ``e^{i phi}`` with ``a = e^{i phi} b``; raises if not equal
    up to a unit scalar."""
    c = proportionality_factor(a, b, atol=atol)
    if c is None or abs(abs(c) - 1.0) > 1e-6:
        raise ValueError("arrays are not equal up to a global phase")
    return c / abs(c)
