"""Open-boundary matrix-product-state simulation over a slot register.

:class:`MPSState` mirrors the positional register API of
:class:`repro.sim.statevector.StateVector` — ``add_qubit`` appends at the
top slot, measurement removes the measured slot so slots above shift
down, ``permute`` relabels slots — but stores the state as a chain of
``(D_left, 2, D_right)`` site tensors in mixed-canonical form.  Memory
and gate cost scale with the *bond dimension* ``chi`` (the Schmidt rank
across chain cuts) instead of ``2^n``, which is what opens
bounded-entanglement patterns at hundreds of qubits.

Slots and sites are decoupled: a slot is the simulator-facing register
position (what compiled ops address), a site is the physical position in
the chain.  Two-qubit gates act on adjacent sites only; distant pairs
are routed together first — a still-product operand (both bonds 1) is
relocated next to its partner as a free list move (the tensor factor
commutes past everything), an entangled operand is walked over site by
site with SWAP contractions.  Routing leaves qubits where they end; the
slot→site map absorbs the shuffle.

Every two-site contraction is refactored by a truncated SVD under
``chi_max`` and a relative singular-value ``cutoff``; the discarded
relative weight ``Σ s_dropped² / Σ s²`` accumulates in
:attr:`MPSState.truncation_error` (zero means the run was numerically
exact, the contract the MPS backend surfaces on its outputs).

All randomness enters through pre-drawn uniform deviates (the ``u``
argument of :meth:`MPSState.measure`, same ``outcome = 0 iff u < p0``
convention as :meth:`repro.sim.density.DensityMatrix.measure`) so callers
own the draw schedule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.sim.statevector import MeasurementBasis, ZeroProbabilityBranch

#: Densification guard: ``to_array`` on more qubits than this raises
#: instead of materializing an out-of-budget ``2^n`` block.
MPS_DENSIFY_MAX = 24


def _as_basis_block(basis: Union[MeasurementBasis, np.ndarray]) -> np.ndarray:
    """Coerce a basis to a ``(2, 2)`` block of row vectors ``(b0, b1)``.

    Building the block from a :class:`MeasurementBasis` reproduces the
    exact floats of the compiler's precomputed ``basis_block`` gather, so
    scalar and chunked samplers see bit-identical projectors."""
    if isinstance(basis, MeasurementBasis):
        return np.array([basis.b0, basis.b1], dtype=complex)
    block = np.asarray(basis, dtype=complex)
    if block.shape != (2, 2):
        raise ValueError(f"expected a (2, 2) basis block, got {block.shape}")
    return block


class MPSState:
    """A pure state as an open-boundary MPS with a slot-indexed API."""

    def __init__(self, chi_max: Optional[int] = None, cutoff: float = 1e-12):
        if chi_max is not None and chi_max < 1:
            raise ValueError("chi_max must be at least 1")
        self.chi_max = chi_max
        self.cutoff = float(cutoff)
        self._tensors: List[np.ndarray] = []  # site -> (Dl, 2, Dr)
        self._slot_at: List[int] = []  # site -> slot
        self._site_of: List[int] = []  # slot -> site
        self._center = -1  # orthogonality-center site (-1: no qubits)
        self._amp = 1.0 + 0.0j  # amplitude of the zero-qubit state
        self.truncation_error = 0.0

    # -- bookkeeping --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self._tensors)

    def bond_dims(self) -> Tuple[int, ...]:
        """The inner bond dimensions, left to right."""
        return tuple(t.shape[2] for t in self._tensors[:-1])

    @property
    def max_bond(self) -> int:
        """Peak current bond dimension (1 for product states)."""
        return max(self.bond_dims(), default=1)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the site tensors."""
        return sum(t.nbytes for t in self._tensors)

    def _rebuild_site_of(self) -> None:
        self._site_of = [0] * len(self._slot_at)
        for site, slot in enumerate(self._slot_at):
            self._site_of[slot] = site

    def _site(self, slot: int, what: str) -> int:
        if not 0 <= slot < len(self._site_of):
            raise ValueError(
                f"{what} targets slot {slot} of a {self.num_qubits}-qubit state"
            )
        return self._site_of[slot]

    def copy(self) -> "MPSState":
        dup = MPSState(chi_max=self.chi_max, cutoff=self.cutoff)
        dup._tensors = [t.copy() for t in self._tensors]
        dup._slot_at = list(self._slot_at)
        dup._site_of = list(self._site_of)
        dup._center = self._center
        dup._amp = self._amp
        dup.truncation_error = self.truncation_error
        return dup

    # -- canonical-form plumbing --------------------------------------------

    def _shift_center_right(self) -> None:
        c = self._center
        a = self._tensors[c]
        dl, _, dr = a.shape
        q, r = np.linalg.qr(a.reshape(dl * 2, dr))
        self._tensors[c] = q.reshape(dl, 2, -1)
        self._tensors[c + 1] = np.tensordot(r, self._tensors[c + 1], axes=(1, 0))
        self._center = c + 1

    def _shift_center_left(self) -> None:
        c = self._center
        a = self._tensors[c]
        dl, _, dr = a.shape
        q, r = np.linalg.qr(a.reshape(dl, 2 * dr).conj().T)
        self._tensors[c] = q.conj().T.reshape(-1, 2, dr)
        self._tensors[c - 1] = np.tensordot(
            self._tensors[c - 1], r.conj().T, axes=(2, 0)
        )
        self._center = c - 1

    def _move_center(self, site: int) -> None:
        while self._center < site:
            self._shift_center_right()
        while self._center > site:
            self._shift_center_left()

    def _split_pair(self, theta: np.ndarray, k: int) -> None:
        """Refactor a two-site block ``theta`` (``(Dl, 2, 2, Dr)``) back
        into sites ``k``/``k+1`` by truncated SVD; center lands on ``k+1``."""
        dl, _, _, dr = theta.shape
        u, s, vh = np.linalg.svd(
            theta.reshape(dl * 2, 2 * dr), full_matrices=False
        )
        keep = s.size
        if s[0] > 0.0:
            keep = int(np.count_nonzero(s > self.cutoff * s[0]))
        if self.chi_max is not None:
            keep = min(keep, self.chi_max)
        keep = max(1, keep)
        if keep < s.size:
            weights = s * s
            total = float(weights.sum())
            if total > 0.0:
                self.truncation_error += float(weights[keep:].sum()) / total
        self._tensors[k] = u[:, :keep].reshape(dl, 2, keep)
        self._tensors[k + 1] = (s[:keep, None] * vh[:keep]).reshape(keep, 2, dr)
        self._center = k + 1

    def _is_product_site(self, site: int) -> bool:
        dl, _, dr = self._tensors[site].shape
        return dl == 1 and dr == 1

    def _relocate(self, src: int, dst: int) -> None:
        """Move the (unentangled, unit-norm) site ``src`` to index ``dst``.

        A product factor commutes past the chain, so this is exact and
        truncation-free: the tensor is re-expressed as ``v ⊗ I_D`` over the
        bond it lands on (an isometry from both sides, so the canonical
        structure survives), at no SVD cost."""
        if self._center == src:
            if len(self._tensors) > 1:
                if src + 1 < len(self._tensors):
                    self._shift_center_right()
                else:
                    self._shift_center_left()
        t = self._tensors.pop(src)
        slot = self._slot_at.pop(src)
        vec = t.reshape(2)
        cut = 1 if dst == 0 else self._tensors[dst - 1].shape[2]
        self._tensors.insert(
            dst,
            np.einsum("lr,p->lpr", np.eye(cut, dtype=complex), vec),
        )
        self._slot_at.insert(dst, slot)
        c = self._center
        if c != src:
            if src < c:
                c -= 1
            if dst <= c:
                c += 1
        else:  # single-site state: center rides along
            c = dst
        self._center = c
        self._rebuild_site_of()

    def _swap_sites(self, k: int) -> None:
        """Exchange the qubits at sites ``k`` and ``k+1`` (SWAP routing)."""
        if self._center < k:
            self._move_center(k)
        elif self._center > k + 1:
            self._move_center(k + 1)
        theta = np.tensordot(self._tensors[k], self._tensors[k + 1], axes=(2, 0))
        self._split_pair(theta.transpose(0, 2, 1, 3), k)
        self._slot_at[k], self._slot_at[k + 1] = (
            self._slot_at[k + 1],
            self._slot_at[k],
        )
        self._rebuild_site_of()

    def _route_adjacent(self, s0: int, s1: int) -> Tuple[int, int]:
        """Bring the qubits of slots ``s0``/``s1`` onto adjacent sites and
        return their site indices (in slot-argument order)."""
        i, j = self._site_of[s0], self._site_of[s1]
        if abs(i - j) == 1:
            return i, j
        # A still-product operand relocates next to its partner for free.
        if self._is_product_site(j):
            self._relocate(j, (i if j < i else i + 1) - (1 if j < i else 0))
            return self._site_of[s0], self._site_of[s1]
        if self._is_product_site(i):
            self._relocate(i, (j if i < j else j + 1) - (1 if i < j else 0))
            return self._site_of[s0], self._site_of[s1]
        # Both entangled: walk the smaller tensor over with SWAP gates.
        size_i = self._tensors[i].shape[0] * self._tensors[i].shape[2]
        size_j = self._tensors[j].shape[0] * self._tensors[j].shape[2]
        lo, hi = min(i, j), max(i, j)
        move_lo = (size_i < size_j) == (i == lo)
        if move_lo:
            for k in range(lo, hi - 1):
                self._swap_sites(k)
        else:
            for k in range(hi - 1, lo, -1):
                self._swap_sites(k)
        return self._site_of[s0], self._site_of[s1]

    # -- register operations ------------------------------------------------

    def add_qubit(self, state) -> None:
        """Append one qubit in ``state`` (length-2, normalized) at the top
        slot — the :class:`~repro.mbqc.compile.PrepOp` contract."""
        vec = np.asarray(state, dtype=complex).reshape(2)
        nrm = float(np.linalg.norm(vec))
        if nrm == 0.0:
            raise ValueError("cannot append a zero state")
        if self._tensors:
            # Fold any non-unit norm into the center so the appended site
            # is a valid right-canonical tensor.
            if abs(nrm - 1.0) > 1e-12:
                self._tensors[self._center] = self._tensors[self._center] * nrm
                vec = vec / nrm
            self._tensors.append(vec.reshape(1, 2, 1))
        else:
            self._tensors.append((self._amp * vec).reshape(1, 2, 1))
            self._amp = 1.0 + 0.0j
            self._center = 0
        self._slot_at.append(len(self._site_of))
        self._site_of.append(len(self._tensors) - 1)

    def permute(self, order) -> None:
        """Relabel slots: new slot ``j`` holds what old slot ``order[j]``
        held.  Pure bookkeeping — no tensor work."""
        order = list(order)
        if sorted(order) != list(range(self.num_qubits)):
            raise ValueError(
                f"permutation {order!r} is not over {self.num_qubits} slots"
            )
        self._site_of = [self._site_of[s] for s in order]
        for slot, site in enumerate(self._site_of):
            self._slot_at[site] = slot

    def apply_1q(self, mat: np.ndarray, slot: int) -> None:
        """Apply a single-qubit operator (local contraction; canonical
        structure survives for unitaries, which is all compiled ops use)."""
        site = self._site(slot, "1q gate")
        self._tensors[site] = np.tensordot(
            np.asarray(mat, dtype=complex), self._tensors[site], axes=(1, 1)
        ).transpose(1, 0, 2)

    def apply_2q(self, mat: np.ndarray, slot0: int, slot1: int) -> None:
        """Apply a two-qubit gate (``4×4``, little-endian on
        ``(slot0, slot1)``) — route adjacent, contract, truncated-SVD split."""
        if slot0 == slot1:
            raise ValueError("2q gate needs two distinct slots")
        self._site(slot0, "2q gate")
        self._site(slot1, "2q gate")
        i, j = self._route_adjacent(slot0, slot1)
        k = min(i, j)
        if self._center < k:
            self._move_center(k)
        elif self._center > k + 1:
            self._move_center(k + 1)
        gate = np.asarray(mat, dtype=complex).reshape(2, 2, 2, 2)
        theta = np.tensordot(self._tensors[k], self._tensors[k + 1], axes=(2, 0))
        if i < j:  # site k holds slot0: G[y1, y0, x1, x0], theta (l, x0, x1, r)
            theta = np.einsum("dcba,labr->lcdr", gate, theta)
        else:  # site k holds slot1
            theta = np.einsum("dcba,lbar->ldcr", gate, theta)
        self._split_pair(theta, k)

    def apply_cz(self, slot0: int, slot1: int) -> None:
        """Controlled-Z between two slots (symmetric)."""
        self.apply_2q(np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex), slot0, slot1)

    def measure(
        self,
        slot: int,
        basis: Union[MeasurementBasis, np.ndarray],
        u: Optional[float] = None,
        rng=None,
        force: Optional[int] = None,
        renormalize: bool = True,
    ) -> Tuple[int, float]:
        """Measure ``slot`` in ``basis`` and remove it from the register.

        Returns ``(outcome, probability)``.  ``u`` is an optional
        pre-drawn uniform deviate deciding the outcome (``0`` iff
        ``u < p0``, the shared trajectory-engine convention); ``force``
        pins the branch and raises :class:`ZeroProbabilityBranch` when its
        probability is below ``1e-12``.  The probability is always exact
        relative to the current (possibly truncated) state."""
        site = self._site(slot, "measurement")
        self._move_center(site)
        block = _as_basis_block(basis)
        a = self._tensors[site]
        nrm2 = float(np.real(np.vdot(a, a)))
        if nrm2 <= 0.0:
            raise ZeroProbabilityBranch("state has zero norm")
        amp0 = np.tensordot(block[0].conj(), a, axes=(0, 1))
        p0 = float(np.real(np.vdot(amp0, amp0))) / nrm2
        p0 = min(1.0, max(0.0, p0))
        if force is not None:
            outcome = int(force)
            prob = p0 if outcome == 0 else 1.0 - p0
            if prob < 1e-12:
                raise ZeroProbabilityBranch(
                    f"forced outcome {outcome} has probability ~0"
                )
        else:
            if u is None:
                if rng is None:
                    raise ValueError("measure needs u=, rng=, or force=")
                u = float(rng.random())
            outcome = 0 if u < p0 else 1
            prob = p0 if outcome == 0 else 1.0 - p0
        reduced = (
            amp0 if outcome == 0
            else np.tensordot(block[1].conj(), a, axes=(0, 1))
        )
        n = len(self._tensors)
        if n == 1:
            self._amp = self._amp * complex(reduced[0, 0])
            self._center = -1
            if renormalize and abs(self._amp) > 0.0:
                self._amp = self._amp / abs(self._amp)
        elif site > 0:
            self._tensors[site - 1] = np.tensordot(
                self._tensors[site - 1], reduced, axes=(2, 0)
            )
            self._center = site - 1
        else:
            self._tensors[1] = np.tensordot(reduced, self._tensors[1], axes=(1, 0))
            self._center = 1  # becomes site 0 after the drop below
        # Remove the measured site; slots above shift down.
        del self._tensors[site]
        del self._site_of[slot]
        del self._slot_at[site]
        self._site_of = [s - 1 if s > site else s for s in self._site_of]
        self._slot_at = [s - 1 if s > slot else s for s in self._slot_at]
        if self._center > site:
            self._center -= 1
        if renormalize and self._tensors:
            c = self._tensors[self._center]
            cn = float(np.linalg.norm(c))
            if cn > 0.0:
                self._tensors[self._center] = c / cn
        return outcome, prob

    def discard(self, slot: int) -> None:
        """Drop an *unentangled* qubit (both bonds 1) from the register.

        Discarding an entangled qubit would leave a mixed state, which an
        MPS cannot represent — that raises instead."""
        site = self._site(slot, "discard")
        if not self._is_product_site(site):
            raise ValueError(
                f"slot {slot} is entangled (bond dims "
                f"{self._tensors[site].shape[0]}x{self._tensors[site].shape[2]}); "
                f"only product qubits can be discarded"
            )
        factor = float(np.linalg.norm(self._tensors[site]))
        n = len(self._tensors)
        if n == 1:
            self._amp = self._amp * factor
            self._tensors = []
            self._slot_at = []
            self._site_of = []
            self._center = -1
            return
        if self._center == site:
            # Hand the norm to a neighbor, which becomes the new center.
            nb = site - 1 if site > 0 else 1
            self._tensors[nb] = self._tensors[nb] * factor
            self._center = nb
        del self._tensors[site]
        del self._site_of[slot]
        del self._slot_at[site]
        self._site_of = [s - 1 if s > site else s for s in self._site_of]
        self._slot_at = [s - 1 if s > slot else s for s in self._slot_at]
        if self._center > site:
            self._center -= 1

    # -- dense interchange --------------------------------------------------

    def norm(self) -> float:
        """``sqrt(<ψ|ψ>)`` — read off the center tensor in canonical form."""
        if not self._tensors:
            return abs(self._amp)
        return float(np.linalg.norm(self._tensors[self._center]))

    def to_array(self) -> np.ndarray:
        """Little-endian amplitudes in slot order (slot 0 least
        significant), matching :meth:`StateVector.to_array`."""
        n = self.num_qubits
        if n == 0:
            return np.array([self._amp], dtype=complex)
        if n > MPS_DENSIFY_MAX:
            raise ValueError(
                f"refusing to densify a {n}-qubit MPS "
                f"(cap {MPS_DENSIFY_MAX}); read amplitudes locally instead"
            )
        res = self._tensors[0]
        for t in self._tensors[1:]:
            res = np.tensordot(res, t, axes=(res.ndim - 1, 0))
        res = res.reshape((2,) * n)  # axis per site
        res = res.transpose([self._site_of[s] for s in range(n)])  # axis per slot
        return self._amp * res.transpose(tuple(reversed(range(n)))).reshape(-1)

    @classmethod
    def from_dense_row(
        cls,
        row: np.ndarray,
        chi_max: Optional[int] = None,
        cutoff: float = 1e-12,
    ) -> "MPSState":
        """Build an MPS from a little-endian amplitude row (``2^k``) by a
        left-to-right cascade of truncated SVDs; slot ``i`` lands on site
        ``i``."""
        row = np.asarray(row, dtype=complex).reshape(-1)
        k = int(row.size).bit_length() - 1
        if 1 << k != row.size:
            raise ValueError(f"amplitude row of size {row.size} is not 2^k")
        mps = cls(chi_max=chi_max, cutoff=cutoff)
        if k == 0:
            mps._amp = complex(row[0])
            return mps
        # Axis per qubit, slot order (inverse of to_array's flattening).
        rem = row.reshape((2,) * k).transpose(tuple(reversed(range(k))))
        dl = 1
        for site in range(k - 1):
            m = rem.reshape(dl * 2, -1)
            u, s, vh = np.linalg.svd(m, full_matrices=False)
            keep = s.size
            if s[0] > 0.0:
                keep = int(np.count_nonzero(s > cutoff * s[0]))
            if chi_max is not None:
                keep = min(keep, chi_max)
            keep = max(1, keep)
            if keep < s.size:
                weights = s * s
                total = float(weights.sum())
                if total > 0.0:
                    mps.truncation_error += float(weights[keep:].sum()) / total
            mps._tensors.append(u[:, :keep].reshape(dl, 2, keep))
            rem = s[:keep, None] * vh[:keep]
            dl = keep
        mps._tensors.append(rem.reshape(dl, 2, 1))
        mps._center = k - 1
        mps._slot_at = list(range(k))
        mps._site_of = list(range(k))
        return mps
