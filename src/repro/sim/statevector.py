"""Dense statevector simulator with dynamic qubit allocation.

The state is stored as an ndarray of shape ``(2,)*n`` with tensor axis ``i``
holding qubit slot ``i``.  Gate application uses ``tensordot`` on views
(never materializing full ``2^n x 2^n`` operators), per the vectorization
guidance for hot numerical paths.  Measurements can *remove* the measured
qubit by contracting its axis with the conjugated basis vector, which is what
keeps MBQC pattern simulation at max-live-qubit memory cost.

Flattening convention is little-endian: :meth:`StateVector.to_array` returns
amplitudes indexed by ``x = sum_i x_i 2**i``.

:class:`BatchedStateVector` is the vectorized sibling used by the batched
pattern-execution engine (:mod:`repro.mbqc.backend`): it carries ``B``
independent pure states in one ``(B, 2, ..., 2)`` tensor with the batch on
axis 0 and qubit slot ``i`` on tensor axis ``i + 1``.  Every operation is a
single ``tensordot``/view sweep over the whole batch, so simulating all
``2^k`` input columns of a pattern costs one pass instead of ``2^k``
sequential re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.linalg.gates import rx as _rx, ry as _ry, rz as _rz
from repro.utils.rng import SeedLike, ensure_rng

KET_0 = np.array([1, 0], dtype=complex)
KET_1 = np.array([0, 1], dtype=complex)
KET_PLUS = np.array([1, 1], dtype=complex) / np.sqrt(2)
KET_MINUS = np.array([1, -1], dtype=complex) / np.sqrt(2)


@dataclass(frozen=True)
class MeasurementBasis:
    """An orthonormal single-qubit measurement basis ``{b0, b1}``.

    Outcome ``m`` corresponds to projecting onto ``b_m``.  Constructors for
    the three measurement planes used in MBQC follow DESIGN.md:

    - ``xy(t)``: ``{RZ(t)|+>, RZ(t)|->}`` — X measurement rotated about Z,
    - ``yz(t)``: ``{RX(t)|0>, RX(t)|1>}`` — Z measurement rotated about X,
    - ``xz(t)``: ``{RY(t)|0>, RY(t)|1>}`` — Z measurement rotated about Y.

    ``xy(0)`` is the X basis, ``yz(0)`` and ``xz(0)`` the Z basis, and
    ``xy(pi/2)`` the Y basis.
    """

    b0: Tuple[complex, complex]
    b1: Tuple[complex, complex]

    @staticmethod
    def from_vectors(b0: np.ndarray, b1: np.ndarray) -> "MeasurementBasis":
        b0 = np.asarray(b0, dtype=complex)
        b1 = np.asarray(b1, dtype=complex)
        if not np.isclose(np.linalg.norm(b0), 1) or not np.isclose(np.linalg.norm(b1), 1):
            raise ValueError("basis vectors must be normalized")
        if not np.isclose(np.vdot(b0, b1), 0):
            raise ValueError("basis vectors must be orthogonal")
        return MeasurementBasis(tuple(b0), tuple(b1))

    @staticmethod
    def xy(angle: float) -> "MeasurementBasis":
        return MeasurementBasis.from_vectors(_rz(angle) @ KET_PLUS, _rz(angle) @ KET_MINUS)

    @staticmethod
    def yz(angle: float) -> "MeasurementBasis":
        return MeasurementBasis.from_vectors(_rx(angle) @ KET_0, _rx(angle) @ KET_1)

    @staticmethod
    def xz(angle: float) -> "MeasurementBasis":
        return MeasurementBasis.from_vectors(_ry(angle) @ KET_0, _ry(angle) @ KET_1)

    @staticmethod
    def pauli(label: str) -> "MeasurementBasis":
        if label == "Z":
            return MeasurementBasis.from_vectors(KET_0, KET_1)
        if label == "X":
            return MeasurementBasis.from_vectors(KET_PLUS, KET_MINUS)
        if label == "Y":
            return MeasurementBasis.from_vectors(
                np.array([1, 1j], dtype=complex) / np.sqrt(2),
                np.array([1, -1j], dtype=complex) / np.sqrt(2),
            )
        raise ValueError(f"unknown Pauli basis {label!r}")

    def vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.array(self.b0, dtype=complex), np.array(self.b1, dtype=complex)


class StateVector:
    """Mutable dense n-qubit pure state with dynamic register size."""

    def __init__(self, num_qubits: int = 0, tensor: Optional[np.ndarray] = None):
        if tensor is not None:
            tensor = np.asarray(tensor, dtype=complex)
            n = tensor.ndim if tensor.shape != (1,) else 0
            if tensor.shape not in [(2,) * n, (1,)]:
                raise ValueError("tensor must have shape (2,)*n")
            self._t = tensor
        else:
            if num_qubits < 0:
                raise ValueError("num_qubits must be non-negative")
            t = np.zeros((2,) * num_qubits if num_qubits else (1,), dtype=complex)
            t.flat[0] = 1.0
            self._t = t

    # -- constructors ------------------------------------------------------
    @staticmethod
    def zeros(n: int) -> "StateVector":
        """``|0...0>`` on ``n`` qubits."""
        return StateVector(n)

    @staticmethod
    def plus(n: int) -> "StateVector":
        """``|+>^n`` — the QAOA initial state."""
        sv = StateVector(0)
        for _ in range(n):
            sv.add_qubit(KET_PLUS)
        return sv

    @staticmethod
    def from_array(vec: np.ndarray) -> "StateVector":
        """Build from a little-endian flat amplitude vector of length 2**n."""
        vec = np.asarray(vec, dtype=complex)
        if vec.size == 0:
            raise ValueError("amplitude vector must be non-empty")
        n = int(np.round(np.log2(vec.size)))
        if vec.size != 1 << n:
            raise ValueError("length must be a power of two")
        if n == 0:
            return StateVector(tensor=vec.reshape((1,)))
        # Little-endian flat index has qubit 0 in the lowest bit; C-order
        # reshape puts the first axis at the highest bit, so reverse axes.
        t = vec.reshape((2,) * n).transpose(tuple(reversed(range(n))))
        return StateVector(tensor=t.copy())

    # -- basic properties --------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return 0 if self._t.shape == (1,) else self._t.ndim

    def norm(self) -> float:
        return float(np.linalg.norm(self._t))

    def normalize(self) -> "StateVector":
        n = self.norm()
        if n < 1e-300:
            raise ValueError("cannot normalize zero state")
        self._t /= n
        return self

    def to_array(self) -> np.ndarray:
        """Little-endian flat amplitude vector (copy)."""
        n = self.num_qubits
        if n == 0:
            return self._t.copy()
        return self._t.transpose(tuple(reversed(range(n)))).reshape(-1).copy()

    def copy(self) -> "StateVector":
        return StateVector(tensor=self._t.copy())

    def probabilities(self) -> np.ndarray:
        """Little-endian probability vector."""
        a = self.to_array()
        return (a.conj() * a).real

    # -- register management ----------------------------------------------
    def add_qubit(self, state: np.ndarray = KET_PLUS) -> int:
        """Append a fresh qubit in single-qubit ``state``; returns its slot."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2,):
            raise ValueError("single-qubit state must have shape (2,)")
        if self.num_qubits == 0:
            self._t = self._t.flat[0] * state
            # A 1-qubit tensor already has the right shape.
            if self._t.shape != (2,):
                self._t = self._t.reshape((2,))
            return 0
        self._t = np.multiply.outer(self._t, state)
        return self.num_qubits - 1

    def _check(self, *qubits: int) -> None:
        n = self.num_qubits
        for q in qubits:
            if not 0 <= q < n:
                raise ValueError(f"qubit {q} out of range for {n}-qubit state")
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit indices")

    # -- unitaries ---------------------------------------------------------
    def apply_1q(self, matrix: np.ndarray, q: int) -> None:
        """Apply a 2x2 unitary to qubit ``q`` in place."""
        self._check(q)
        t = np.tensordot(matrix, self._t, axes=([1], [q]))
        self._t = np.moveaxis(t, 0, q)

    def apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> None:
        """Apply a 4x4 unitary (little-endian on (q0, q1)) in place."""
        self._check(q0, q1)
        # Little-endian 4-dim index is x_q0 + 2 x_q1 -> reshape axes (q1,q0).
        op = np.asarray(matrix, dtype=complex).reshape(2, 2, 2, 2)
        t = np.tensordot(op, self._t, axes=([2, 3], [q1, q0]))
        self._t = np.moveaxis(t, [0, 1], [q1, q0])

    def apply_kq(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary on ``qubits`` (little-endian)."""
        k = len(qubits)
        self._check(*qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError("operator size does not match qubit count")
        axes = list(reversed(qubits))  # high bit first for C-order reshape
        op = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
        t = np.tensordot(op, self._t, axes=(list(range(k, 2 * k)), axes))
        self._t = np.moveaxis(t, list(range(k)), axes)

    def apply_cz(self, q0: int, q1: int) -> None:
        """Controlled-Z via sign flip on the ``|11>`` slice (no tensordot)."""
        self._check(q0, q1)
        idx = [slice(None)] * self.num_qubits
        idx[q0] = 1
        idx[q1] = 1
        self._t[tuple(idx)] *= -1.0

    def apply_diagonal(self, diag: np.ndarray) -> None:
        """Multiply by a full-register diagonal given little-endian."""
        n = self.num_qubits
        if diag.shape != (1 << n,):
            raise ValueError("diagonal length mismatch")
        d = diag.reshape((2,) * n).transpose(tuple(reversed(range(n)))) if n else diag
        self._t = self._t * d

    # -- measurement -------------------------------------------------------
    def measure_probability(self, q: int, basis: MeasurementBasis, outcome: int) -> float:
        """Probability of ``outcome`` when measuring ``q`` in ``basis``.

        The result is normalized by the state's total norm, matching
        :meth:`measure` — on an unnormalized state (e.g. the
        ``renormalize=False`` branch-extraction path) the probabilities of
        the two outcomes still sum to one.
        """
        self._check(q)
        total = float(np.vdot(self._t, self._t).real)
        if total < 1e-300:
            raise ValueError("cannot measure a zero-norm state")
        b = basis.vectors()[outcome]
        amp = np.tensordot(b.conj(), self._t, axes=([0], [q]))
        return float(np.vdot(amp, amp).real) / total

    def measure(
        self,
        q: int,
        basis: MeasurementBasis,
        rng: SeedLike = None,
        force: Optional[int] = None,
        remove: bool = True,
        renormalize: bool = True,
    ) -> Tuple[int, float]:
        """Measure qubit ``q``; returns ``(outcome, probability)``.

        ``force`` pins the outcome (used for branch enumeration); forcing a
        zero-probability branch raises.  With ``remove=True`` the measured
        qubit is deleted from the register (slots above shift down by one);
        with ``remove=False`` it collapses in place to the basis vector.
        """
        self._check(q)
        b0, b1 = basis.vectors()
        amp0 = np.tensordot(b0.conj(), self._t, axes=([0], [q]))
        p0 = float(np.vdot(amp0, amp0).real)
        total = float(np.vdot(self._t, self._t).real)
        if total < 1e-300:
            raise ValueError("cannot measure a zero-norm state")
        p0 /= total

        if force is None:
            outcome = 0 if ensure_rng(rng).random() < p0 else 1
        else:
            if force not in (0, 1):
                raise ValueError("forced outcome must be 0 or 1")
            outcome = force
        prob = p0 if outcome == 0 else 1.0 - p0
        if force is not None and prob < 1e-12:
            raise ZeroProbabilityBranch(
                f"forced outcome {force} on qubit {q} has probability ~0"
            )

        if outcome == 0:
            reduced = amp0
        else:
            reduced = np.tensordot(b1.conj(), self._t, axes=([0], [q]))

        if remove:
            self._t = reduced if reduced.shape else reduced.reshape((1,))
            if self.num_qubits == 0 and self._t.shape != (1,):
                self._t = self._t.reshape((1,))
        else:
            vec = basis.vectors()[outcome]
            t = np.multiply.outer(reduced, vec)
            self._t = np.moveaxis(t, -1, q)
        if renormalize:
            self.normalize()
        return outcome, prob

    def measure_pauli(
        self, q: int, label: str, rng: SeedLike = None,
        force: Optional[int] = None, remove: bool = False,
    ) -> Tuple[int, float]:
        """Convenience projective Pauli measurement (collapse in place)."""
        return self.measure(q, MeasurementBasis.pauli(label), rng=rng, force=force, remove=remove)

    # -- derived quantities --------------------------------------------------
    def expectation_diagonal(self, diag: np.ndarray) -> float:
        """``<psi| D |psi>`` for a real little-endian diagonal ``D``."""
        p = self.probabilities()
        if diag.shape != p.shape:
            raise ValueError("diagonal length mismatch")
        return float(np.dot(p, diag))

    def sample(self, shots: int, rng: SeedLike = None) -> np.ndarray:
        """Sample computational-basis outcomes; returns ``shots`` ints."""
        p = self.probabilities()
        p = p / p.sum()
        return ensure_rng(rng).choice(p.size, size=shots, p=p)

    def fidelity(self, other: "StateVector") -> float:
        """``|<self|other>|^2`` for normalized states."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit-count mismatch")
        a = self.to_array()
        b = other.to_array()
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        return float(abs(np.vdot(a, b)) ** 2 / (na * nb) ** 2)


class ZeroProbabilityBranch(ValueError):
    """Raised when branch enumeration forces an impossible outcome."""


class BatchedStateVector:
    """``B`` independent pure states evolved in lockstep.

    The tensor has shape ``(B, 2, ..., 2)``: batch on axis 0, qubit slot
    ``i`` on axis ``i + 1``.  All batch elements share the same register
    layout and undergo the same operations; amplitudes (and norms) evolve
    independently per element.  This is the execution substrate for
    forced-branch pattern runs where the ``2^k`` input basis columns of
    :func:`repro.mbqc.runner.pattern_to_matrix` ride one batch.

    Measurements are *forced* (projective with a pinned outcome): sampling
    per batch element would break the lockstep register layout, and the
    batched engine only ever runs fixed outcome branches.
    """

    def __init__(self, batch_size: int, num_qubits: int = 0, tensor: Optional[np.ndarray] = None):
        if tensor is not None:
            tensor = np.asarray(tensor, dtype=complex)
            if tensor.ndim < 1 or tensor.shape[1:] != (2,) * (tensor.ndim - 1):
                raise ValueError("tensor must have shape (B,) + (2,)*n")
            self._t = tensor
        else:
            if batch_size < 1:
                raise ValueError("batch_size must be positive")
            if num_qubits < 0:
                raise ValueError("num_qubits must be non-negative")
            t = np.zeros((batch_size,) + (2,) * num_qubits, dtype=complex)
            t.reshape(batch_size, -1)[:, 0] = 1.0
            self._t = t

    @staticmethod
    def from_arrays(mat: np.ndarray) -> "BatchedStateVector":
        """Build from a ``(B, 2**n)`` block of little-endian amplitude rows."""
        mat = np.asarray(mat, dtype=complex)
        if mat.ndim != 2 or mat.shape[0] < 1 or mat.shape[1] < 1:
            raise ValueError("need a 2-D (B, 2**n) amplitude block")
        b, m = mat.shape
        n = int(np.round(np.log2(m)))
        if m != 1 << n:
            raise ValueError("row length must be a power of two")
        if n == 0:
            return BatchedStateVector(b, tensor=mat.reshape(b).copy())
        t = mat.reshape((b,) + (2,) * n)
        t = t.transpose((0,) + tuple(reversed(range(1, n + 1))))
        return BatchedStateVector(b, tensor=t.copy())

    # -- basic properties --------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._t.shape[0]

    @property
    def num_qubits(self) -> int:
        return self._t.ndim - 1

    def _check(self, *qubits: int) -> None:
        n = self.num_qubits
        for q in qubits:
            if not 0 <= q < n:
                raise ValueError(f"qubit {q} out of range for {n}-qubit batch")
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit indices")

    def sq_norms(self) -> np.ndarray:
        """Per-element squared norms, shape ``(B,)``."""
        flat = self._t.reshape(self.batch_size, -1)
        return np.einsum("bi,bi->b", flat.conj(), flat).real

    def to_arrays(self) -> np.ndarray:
        """``(B, 2**n)`` little-endian amplitude block (copy)."""
        b, n = self.batch_size, self.num_qubits
        if n == 0:
            return self._t.reshape(b, 1).copy()
        t = self._t.transpose((0,) + tuple(reversed(range(1, n + 1))))
        return t.reshape(b, -1).copy()

    def copy(self) -> "BatchedStateVector":
        return BatchedStateVector(self.batch_size, tensor=self._t.copy())

    def renormalize(self) -> None:
        """Scale every batch element back to unit norm.

        Long measurement sweeps that defer per-step normalization (each
        projection multiplies an element's norm² by its outcome
        probability) call this periodically so norms never underflow.
        """
        norms = np.sqrt(self.sq_norms())
        if np.any(norms < 1e-300):
            raise ValueError("cannot renormalize a zero-norm state")
        self._t /= norms.reshape((-1,) + (1,) * self.num_qubits)

    # -- register management ----------------------------------------------
    def add_qubit(self, state: np.ndarray = KET_PLUS) -> int:
        """Append a fresh qubit in ``state`` to every element; returns its slot."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2,):
            raise ValueError("single-qubit state must have shape (2,)")
        self._t = np.multiply.outer(self._t, state)
        return self.num_qubits - 1

    def permute(self, order: Sequence[int]) -> None:
        """Reorder slots so new qubit ``j`` is old slot ``order[j]``."""
        n = self.num_qubits
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of all slots")
        self._t = self._t.transpose((0,) + tuple(s + 1 for s in order))

    # -- unitaries ---------------------------------------------------------
    def apply_1q(self, matrix: np.ndarray, q: int) -> None:
        """Apply one 2x2 unitary to qubit ``q`` of every batch element."""
        self._check(q)
        t = np.tensordot(matrix, self._t, axes=([1], [q + 1]))
        self._t = np.moveaxis(t, 0, q + 1)

    def apply_1q_masked(self, matrix: np.ndarray, q: int, mask: np.ndarray) -> None:
        """Apply a 2x2 unitary to qubit ``q`` of the masked batch elements.

        ``mask`` is a boolean ``(B,)`` selector.  This is the primitive
        behind per-element conditional corrections (and per-element Pauli
        faults) in the batched trajectory sampler: element ``j`` is touched
        iff ``mask[j]``.
        """
        self._check(q)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.batch_size,):
            raise ValueError("mask must have shape (batch_size,)")
        if not mask.any():
            return
        sel = self._t[mask]
        t = np.tensordot(matrix, sel, axes=([1], [q + 1]))
        self._t[mask] = np.moveaxis(t, 0, q + 1)

    def apply_cz(self, q0: int, q1: int) -> None:
        """Batched controlled-Z via sign flip on the ``|11>`` slice."""
        self._check(q0, q1)
        idx = [slice(None)] * (self.num_qubits + 1)
        idx[q0 + 1] = 1
        idx[q1 + 1] = 1
        self._t[tuple(idx)] *= -1.0

    # -- measurement -------------------------------------------------------
    def measure_forced(
        self,
        q: int,
        basis: MeasurementBasis,
        outcome: int,
        renormalize: bool = False,
    ) -> np.ndarray:
        """Project every element onto ``basis[outcome]`` of qubit ``q``.

        The measured qubit is removed (slots above shift down, matching
        :meth:`StateVector.measure` with ``remove=True``).  Returns the
        per-element outcome probabilities; any element with ~zero branch
        probability raises :class:`ZeroProbabilityBranch`, mirroring the
        sequential forced-measurement semantics element-for-element.
        """
        self._check(q)
        if outcome not in (0, 1):
            raise ValueError("forced outcome must be 0 or 1")
        totals = self.sq_norms()
        if np.any(totals < 1e-300):
            raise ValueError("cannot measure a zero-norm state")
        b = basis.vectors()[outcome]
        self._t = np.tensordot(b.conj(), self._t, axes=([0], [q + 1]))
        probs = self.sq_norms() / totals
        if np.any(probs < 1e-12):
            bad = int(np.argmin(probs))
            raise ZeroProbabilityBranch(
                f"forced outcome {outcome} on qubit {q} has probability ~0 "
                f"for batch element {bad}"
            )
        if renormalize:
            norms = np.sqrt(self.sq_norms())
            self._t /= norms.reshape((-1,) + (1,) * self.num_qubits)
        return probs

    def measure_sampled(
        self,
        q: int,
        vecs: np.ndarray,
        rng: SeedLike = None,
        force: Optional[int] = None,
        renormalize: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-element adaptive measurement of qubit ``q`` (removing it).

        ``vecs`` is a ``(B, 2, 2)`` block: ``vecs[j, m]`` is the basis
        vector element ``j`` projects onto for outcome ``m`` — each batch
        element can measure in its *own* basis, which is what lets the
        trajectory sampler keep elements with different signal parities in
        one lockstep sweep.  Outcomes are drawn per element from the Born
        rule (or pinned for every element with ``force``); returns
        ``(outcomes, probabilities)`` as ``(B,)`` arrays.
        """
        self._check(q)
        b = self.batch_size
        vecs = np.asarray(vecs, dtype=complex)
        if vecs.shape != (b, 2, 2):
            raise ValueError("vecs must have shape (batch_size, 2, 2)")
        t = np.moveaxis(self._t, q + 1, -1)
        amp0 = np.einsum("b...i,bi->b...", t, vecs[:, 0].conj())
        amp1 = np.einsum("b...i,bi->b...", t, vecs[:, 1].conj())
        n0 = np.einsum("bi,bi->b", amp0.reshape(b, -1).conj(), amp0.reshape(b, -1)).real
        n1 = np.einsum("bi,bi->b", amp1.reshape(b, -1).conj(), amp1.reshape(b, -1)).real
        total = n0 + n1
        if np.any(total < 1e-300):
            raise ValueError("cannot measure a zero-norm state")
        p0 = n0 / total
        if force is None:
            outcomes = (ensure_rng(rng).random(b) >= p0).astype(np.int8)
        else:
            if force not in (0, 1):
                raise ValueError("forced outcome must be 0 or 1")
            outcomes = np.full(b, force, dtype=np.int8)
        probs = np.where(outcomes == 0, p0, 1.0 - p0)
        if force is not None and np.any(probs < 1e-12):
            bad = int(np.argmin(probs))
            raise ZeroProbabilityBranch(
                f"forced outcome {force} on qubit {q} has probability ~0 "
                f"for batch element {bad}"
            )
        pick = outcomes.astype(bool).reshape((b,) + (1,) * (amp0.ndim - 1))
        self._t = np.where(pick, amp1, amp0)
        if renormalize:
            norms = np.sqrt(self.sq_norms())
            self._t /= norms.reshape((-1,) + (1,) * self.num_qubits)
        return outcomes, probs
