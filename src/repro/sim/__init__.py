"""Quantum-state simulation substrate.

:class:`~repro.sim.statevector.StateVector` is a dense simulator whose qubit
register can *grow and shrink at runtime* — the property that makes MBQC
simulation tractable: a measurement pattern on ``p(|E|+3|V|)`` total nodes
only ever holds the live subset in memory when ancillas are measured eagerly
(see ``repro.core.reuse``).  :class:`~repro.sim.statevector.BatchedStateVector`
evolves ``B`` independent states in one tensor — the substrate of the batched
pattern-execution engine (``repro.mbqc.backend``) — and
:class:`~repro.sim.density_batched.BatchedDensityMatrix` is its open-system
counterpart: ``B`` whole density operators in lockstep, the substrate of the
vectorized density-engine trajectory sampler.
:class:`~repro.sim.mps.MPSState` is an open-boundary matrix-product state
over the same grow/shrink slot register — bounded-entanglement patterns at
``O(n · chi²)`` memory instead of ``2^n`` — and
:class:`~repro.sim.circuit.Circuit` is a minimal gate-model IR used by the
QAOA builders and the generic circuit→pattern compiler.
"""

from repro.sim.circuit import Circuit, Gate
from repro.sim.density import DensityMatrix, validate_kraus
from repro.sim.density_batched import BatchedDensityMatrix
from repro.sim.mps import MPSState
from repro.sim.statevector import (
    BatchedStateVector,
    MeasurementBasis,
    StateVector,
    ZeroProbabilityBranch,
)

__all__ = [
    "Circuit",
    "Gate",
    "StateVector",
    "BatchedStateVector",
    "DensityMatrix",
    "BatchedDensityMatrix",
    "MPSState",
    "validate_kraus",
    "MeasurementBasis",
    "ZeroProbabilityBranch",
]
