"""Dense density-matrix simulator with Kraus channels.

Complements the trajectory-sampled Pauli noise of :mod:`repro.mbqc.noise`
with *exact* open-system evolution: channels are applied as Kraus maps, so
noisy expectation values need no Monte-Carlo averaging.  The cross-check
between the two (exact channel vs trajectory average) is part of the test
suite — it validates the E15 noise experiment's sampling.

:class:`DensityMatrix` is the substrate of the registered ``"density"``
execution engine (:mod:`repro.mbqc.density_backend`): its register grows and
shrinks with the compiled pattern's slot lifetimes (``add_qubit`` at a
position, ``measure``/``measure_project`` removing the measured axis,
``partial_trace`` retiring a qubit whose record is dead), and Kraus maps of
any arity apply exactly to the live register.

The state is an ndarray of shape ``(2,)*2n``: axes ``0..n-1`` are row
(ket) qubit indices, ``n..2n-1`` column (bra) indices, little-endian
flattening as everywhere else in the library.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.linalg.gates import IDENTITY, PAULI_X, PAULI_Y, PAULI_Z
from repro.sim.statevector import KET_PLUS, MeasurementBasis, StateVector
from repro.utils.rng import SeedLike, ensure_rng

#: Tolerance for the trace-preservation check ``sum K† K ≈ I``.
KRAUS_ATOL = 1e-8


def validate_kraus(
    kraus: Sequence[np.ndarray], where: str = "Kraus set", atol: float = KRAUS_ATOL
) -> Tuple[np.ndarray, ...]:
    """Coerce ``kraus`` to complex arrays and check it is a channel.

    Every operator must be square with a power-of-two dimension, all of one
    arity, and the set must be trace-preserving: ``sum_k K†K ≈ I`` within
    ``atol``.  Violations raise :class:`ValueError` naming the offending
    operator (by index) or the completeness deviation.  The returned
    operators are fresh copies, so callers may freeze them without
    aliasing the caller's arrays.
    """
    if len(kraus) == 0:
        raise ValueError(f"{where} needs at least one Kraus operator")
    ops = []
    dim = None
    for i, k in enumerate(kraus):
        op = np.array(k, dtype=complex)
        if op.ndim != 2 or op.shape[0] != op.shape[1]:
            raise ValueError(
                f"{where}: operator {i} has shape {op.shape}, expected square"
            )
        d = op.shape[0]
        if d < 2 or d & (d - 1):
            raise ValueError(
                f"{where}: operator {i} has dimension {d}, expected a power of 2"
            )
        if dim is None:
            dim = d
        elif d != dim:
            raise ValueError(
                f"{where}: operator {i} has dimension {d}, others have {dim}"
            )
        ops.append(op)
    acc = sum(op.conj().T @ op for op in ops)
    dev = float(np.max(np.abs(acc - np.eye(dim))))
    if dev > atol:
        raise ValueError(
            f"{where} is not trace-preserving: ‖sum K†K − I‖_max = {dev:.3e} "
            f"(tolerance {atol:.0e})"
        )
    return tuple(ops)


def depolarizing_kraus(p: float) -> List[np.ndarray]:
    """Single-qubit depolarizing channel: identity w.p. 1−p, else a
    uniformly random Pauli."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    return [
        np.sqrt(1.0 - p) * IDENTITY,
        np.sqrt(p / 3.0) * PAULI_X,
        np.sqrt(p / 3.0) * PAULI_Y,
        np.sqrt(p / 3.0) * PAULI_Z,
    ]


def dephasing_kraus(p: float) -> List[np.ndarray]:
    """Phase-flip channel: Z w.p. p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    return [np.sqrt(1.0 - p) * IDENTITY, np.sqrt(p) * PAULI_Z]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Amplitude damping with decay probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be a probability")
    k0 = np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


class DensityMatrix:
    """Mutable n-qubit density operator."""

    def __init__(self, num_qubits: int = 0, tensor: Optional[np.ndarray] = None):
        if tensor is not None:
            tensor = np.asarray(tensor, dtype=complex)
            if tensor.shape == (1, 1):
                self._t = tensor
                self._n = 0
                return
            n = tensor.ndim // 2
            if tensor.shape != (2,) * (2 * n):
                raise ValueError("tensor must have shape (2,)*2n")
            self._t = tensor
            self._n = n
        else:
            if num_qubits < 0:
                raise ValueError("num_qubits must be non-negative")
            self._n = num_qubits
            if num_qubits == 0:
                self._t = np.ones((1, 1), dtype=complex)
            else:
                t = np.zeros((2,) * (2 * num_qubits), dtype=complex)
                t[(0,) * (2 * num_qubits)] = 1.0
                self._t = t

    # -- constructors --------------------------------------------------------
    @staticmethod
    def plus(num_qubits: int) -> "DensityMatrix":
        """The pure ``|+>^n`` product state (the default pattern input)."""
        dm = DensityMatrix(0)
        for _ in range(num_qubits):
            dm.add_qubit(KET_PLUS)
        return dm

    @staticmethod
    def from_pure(vec: np.ndarray) -> "DensityMatrix":
        """From a little-endian amplitude column (not necessarily unit)."""
        v = np.asarray(vec, dtype=complex).reshape(-1)
        n = int(np.log2(v.size))
        if v.size != 1 << n:
            raise ValueError("amplitude count must be a power of 2")
        return DensityMatrix.from_matrix(np.outer(v, v.conj()), n)

    @staticmethod
    def from_statevector(sv: StateVector) -> "DensityMatrix":
        vec = sv.to_array()
        n = sv.num_qubits
        rho = np.outer(vec, vec.conj())
        return DensityMatrix.from_matrix(rho, n)

    @staticmethod
    def from_matrix(rho: np.ndarray, num_qubits: int) -> "DensityMatrix":
        """From a little-endian ``2^n x 2^n`` matrix."""
        n = num_qubits
        if rho.shape != (1 << n, 1 << n):
            raise ValueError("matrix size mismatch")
        if n == 0:
            return DensityMatrix(tensor=rho.reshape(1, 1))
        t = rho.reshape((2,) * (2 * n))
        # Little-endian: reverse each index group.
        perm = list(reversed(range(n))) + [n + i for i in reversed(range(n))]
        return DensityMatrix(tensor=np.ascontiguousarray(t.transpose(perm)))

    # -- inspection ----------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return self._n

    def to_matrix(self) -> np.ndarray:
        """Little-endian dense matrix (copy)."""
        n = self._n
        if n == 0:
            return self._t.copy()
        perm = list(reversed(range(n))) + [n + i for i in reversed(range(n))]
        return self._t.transpose(perm).reshape(1 << n, 1 << n).copy()

    def trace(self) -> float:
        return float(np.real(np.trace(self.to_matrix())))

    def purity(self) -> float:
        m = self.to_matrix()
        return float(np.real(np.trace(m @ m)))

    def fidelity_with_pure(self, vec: np.ndarray) -> float:
        """``<ψ|ρ|ψ>`` for a (normalized) pure reference."""
        v = np.asarray(vec, dtype=complex)
        v = v / np.linalg.norm(v)
        m = self.to_matrix()
        return float(np.real(v.conj() @ m @ v))

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities (the little-endian diagonal)."""
        return np.clip(np.real(np.diagonal(self.to_matrix())), 0.0, None)

    def expectation_diagonal(self, diag: np.ndarray) -> float:
        """``Tr(ρ D)`` for a real little-endian diagonal ``D``."""
        p = self.probabilities()
        diag = np.asarray(diag, dtype=float)
        if diag.shape != p.shape:
            raise ValueError("diagonal length mismatch")
        return float(np.dot(p, diag))

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(tensor=self._t.copy())

    # -- dynamics ------------------------------------------------------------
    def _check(self, *qs: int) -> None:
        for q in qs:
            if not 0 <= q < self._n:
                raise ValueError(f"qubit {q} out of range")

    def apply_1q(self, u: np.ndarray, q: int) -> None:
        """``ρ ← U ρ U†`` on one qubit."""
        self._check(q)
        n = self._n
        t = np.tensordot(u, self._t, axes=([1], [q]))
        t = np.moveaxis(t, 0, q)
        t = np.tensordot(u.conj(), t, axes=([1], [n + q]))
        self._t = np.moveaxis(t, 0, n + q)

    def apply_2q(self, u: np.ndarray, q0: int, q1: int) -> None:
        self._check(q0, q1)
        n = self._n
        op = np.asarray(u, dtype=complex).reshape(2, 2, 2, 2)
        t = np.tensordot(op, self._t, axes=([2, 3], [q1, q0]))
        t = np.moveaxis(t, [0, 1], [q1, q0])
        t = np.tensordot(op.conj(), t, axes=([2, 3], [n + q1, n + q0]))
        self._t = np.moveaxis(t, [0, 1], [n + q1, n + q0])

    def apply_kraus(
        self,
        kraus: Sequence[np.ndarray],
        qubits: Union[int, Sequence[int]],
        check: bool = True,
    ) -> None:
        """``ρ ← Σ_k K ρ K†`` on one or more qubits (little-endian).

        ``qubits`` is an int or a sequence matching the operators' arity.
        With ``check=True`` (default) the set is validated as a channel
        (square power-of-two operators, ``Σ K†K ≈ I``) — non-trace-
        preserving sets raise :class:`ValueError` naming the offence; pass
        ``check=False`` only for pre-validated sets on a hot path.
        """
        qs = (qubits,) if isinstance(qubits, (int, np.integer)) else tuple(qubits)
        self._check(*qs)
        if len(set(qs)) != len(qs):
            raise ValueError(f"duplicate qubits in {qs}")
        if check:
            ops = validate_kraus(kraus, where=f"Kraus set on qubits {qs}")
        else:
            ops = tuple(np.asarray(k, dtype=complex) for k in kraus)
        a = len(qs)
        if ops[0].shape[0] != 1 << a:
            raise ValueError(
                f"Kraus operators act on {ops[0].shape[0].bit_length() - 1} "
                f"qubits, got {a} targets"
            )
        n = self._n
        # Row-major reshape puts the high (last) qubit first in each index
        # group, so the tensor axes pair with the targets reversed.
        rq = list(reversed(qs))
        bq = [n + q for q in rq]
        total = None
        for k in ops:
            km = k.reshape((2,) * (2 * a))
            t = np.tensordot(km, self._t, axes=(list(range(a, 2 * a)), rq))
            t = np.moveaxis(t, list(range(a)), rq)
            t = np.tensordot(km.conj(), t, axes=(list(range(a, 2 * a)), bq))
            t = np.moveaxis(t, list(range(a)), bq)
            total = t if total is None else total + t
        self._t = total

    def add_qubit(self, state: np.ndarray, position: Optional[int] = None) -> int:
        """Insert a fresh qubit in pure ``state``; returns its index.

        ``position`` defaults to the end of the register.  The density
        engine inserts prepared nodes *before* any spectator qubits (the
        Choi-state ancillas of the exact determinism check) so compiled
        slot indices stay valid.
        """
        state = np.asarray(state, dtype=complex)
        if state.shape != (2,):
            raise ValueError("single-qubit state must have shape (2,)")
        pure = np.outer(state, state.conj())  # (ket, bra)
        n = self._n
        pos = n if position is None else int(position)
        if not 0 <= pos <= n:
            raise ValueError(f"position {pos} out of range for {n} qubits")
        if n == 0:
            self._t = self._t[0, 0] * pure
            self._n = 1
            return 0
        t = np.multiply.outer(self._t, pure)  # axes: rows, cols, ket, bra
        t = np.moveaxis(t, 2 * n, pos)            # new ket into the row group
        t = np.moveaxis(t, 2 * n + 1, n + 1 + pos)  # new bra mirrors it
        self._t = t
        self._n = n + 1
        return pos

    def permute(self, order: Sequence[int]) -> None:
        """Reorder qubits: new qubit ``i`` is old qubit ``order[i]``."""
        n = self._n
        order = [int(q) for q in order]
        if sorted(order) != list(range(n)):
            raise ValueError(f"order must be a permutation of 0..{n - 1}")
        if n:
            perm = order + [n + q for q in order]
            self._t = self._t.transpose(perm)

    def partial_trace(self, q: int) -> None:
        """Trace out qubit ``q``, retiring it from the register."""
        self._check(q)
        n = self._n
        t = np.trace(self._t, axis1=q, axis2=n + q)
        self._n = n - 1
        self._t = t if self._n else np.asarray(t, dtype=complex).reshape(1, 1)

    def measure_project(
        self,
        q: int,
        basis: MeasurementBasis,
        outcome: int,
        remove: bool = True,
        renormalize: bool = False,
    ) -> Tuple["DensityMatrix", float]:
        """Project qubit ``q`` onto ``basis`` vector ``outcome`` — the
        branching primitive of exact channel integration.

        Non-mutating: returns ``(post_state, probability)`` where
        ``probability`` is relative to this state's trace.  With
        ``renormalize=False`` (default) the post-state keeps the branch
        weight in its trace, so summing both outcomes' post-states
        reconstructs the measurement-dephased mixture exactly.
        """
        self._check(q)
        if outcome not in (0, 1):
            raise ValueError("outcome must be 0 or 1")
        n = self._n
        b = basis.vectors()[outcome]
        t = np.tensordot(b.conj(), self._t, axes=([0], [q]))
        t = np.tensordot(b, t, axes=([0], [n + q - 1]))
        prob = float(np.real(_trace_tensor(t, n - 1)))
        if not remove:
            pure = np.outer(b, b.conj())
            t = np.multiply.outer(t, pure)
            t = np.moveaxis(t, 2 * (n - 1), q)
            t = np.moveaxis(t, -1, n + q)
        if renormalize:
            t = t / max(prob, 1e-300)
        m = n if not remove else n - 1
        if m == 0:
            t = np.asarray(t, dtype=complex).reshape(1, 1)
        return DensityMatrix(tensor=t), prob

    def measure(
        self,
        q: int,
        basis: MeasurementBasis,
        rng: SeedLike = None,
        force: Optional[int] = None,
        remove: bool = True,
        u: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Projective measurement; returns ``(outcome, probability)``.

        ``u`` is an optional pre-drawn uniform deviate deciding the outcome
        (0 iff ``u < p0``) in place of an ``rng`` draw — the hook that lets
        the density engine's per-shot reference loop consume the identical
        whole-block draw schedule as its vectorized sweep."""
        self._check(q)
        n = self._n
        b0, b1 = basis.vectors()
        probs = []
        reduced = []
        for b in (b0, b1):
            t = np.tensordot(b.conj(), self._t, axes=([0], [q]))
            t = np.tensordot(b, t, axes=([0], [n + q - 1]))
            # After removing both axes, remaining layout: rows minus q then
            # cols minus q — tensordot ordering: first contraction removed
            # axis q (rows shift), second removed old axis n+q (now n+q-1).
            reduced.append(t)
            probs.append(float(np.real(_trace_tensor(t, n - 1))))
        total = probs[0] + probs[1]
        if total <= 1e-300:
            raise ValueError("zero-trace state")
        p0 = probs[0] / total
        if force is None:
            if u is None:
                u = ensure_rng(rng).random()
            outcome = 0 if u < p0 else 1
        else:
            outcome = int(force)
            if (p0 if outcome == 0 else 1 - p0) < 1e-12:
                raise ValueError("forced outcome has probability ~0")
        prob = p0 if outcome == 0 else 1.0 - p0
        t = reduced[outcome]
        if not remove:
            vec = (b0, b1)[outcome]
            pure = np.outer(vec, vec.conj())
            t = np.multiply.outer(t, pure)
            t = np.moveaxis(t, 2 * (n - 1), q)
            t = np.moveaxis(t, -1, n + q)
            self._t = t / max(probs[outcome], 1e-300)
            return outcome, prob
        self._n = n - 1
        self._t = t / max(probs[outcome], 1e-300) if self._n else np.array(
            [[t / max(probs[outcome], 1e-300)]], dtype=complex
        ).reshape(1, 1)
        return outcome, prob


def _trace_tensor(t: np.ndarray, n: int) -> complex:
    """Trace of an ``(2,)*2n`` density tensor."""
    if n == 0:
        return complex(np.asarray(t).reshape(-1)[0])
    m = t.reshape(1 << n, 1 << n)
    return complex(np.trace(m))
