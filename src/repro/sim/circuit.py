"""Minimal gate-model circuit IR.

Only what the reproduction needs: the gates QAOA compiles to (Fig. 2 of the
paper), the Clifford+rotation set the generic circuit→pattern compiler
consumes, and multi-controlled rotations for the MIS partial mixer
(Section IV).  Circuits are lists of :class:`Gate` records; simulation
delegates to :class:`~repro.sim.statevector.StateVector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.gates import (
    CNOT,
    CZ,
    HADAMARD,
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    SWAP,
    S_GATE,
    T_GATE,
    controlled,
    j_gate,
    phase_gate,
    rx,
    ry,
    rz,
)
from repro.linalg.kron import operator_on_qubits
from repro.sim.statevector import StateVector

# name -> (arity or None for variadic, param count, matrix factory)
_FixedFactory = Callable[..., np.ndarray]

_GATES: Dict[str, Tuple[Optional[int], int, _FixedFactory]] = {
    "i": (1, 0, lambda: IDENTITY),
    "x": (1, 0, lambda: PAULI_X),
    "y": (1, 0, lambda: PAULI_Y),
    "z": (1, 0, lambda: PAULI_Z),
    "h": (1, 0, lambda: HADAMARD),
    "s": (1, 0, lambda: S_GATE),
    "sdg": (1, 0, lambda: S_GATE.conj().T),
    "t": (1, 0, lambda: T_GATE),
    "tdg": (1, 0, lambda: T_GATE.conj().T),
    "rx": (1, 1, rx),
    "ry": (1, 1, ry),
    "rz": (1, 1, rz),
    "p": (1, 1, phase_gate),
    "j": (1, 1, j_gate),
    "cz": (2, 0, lambda: CZ),
    "cnot": (2, 0, lambda: CNOT),
    "swap": (2, 0, lambda: SWAP),
    "crz": (2, 1, lambda t: controlled(rz(t))),
    "crx": (2, 1, lambda t: controlled(rx(t))),
    "cp": (2, 1, lambda t: controlled(phase_gate(t))),
    "ccz": (3, 0, lambda: controlled(PAULI_Z, 2)),
    "ccx": (3, 0, lambda: controlled(PAULI_X, 2)),
    # Variadic multi-controlled gates: qubits = (*controls, target).
    "mcx": (None, 0, lambda k: controlled(PAULI_X, k)),
    "mcrx": (None, 1, lambda t, k: controlled(rx(t), k)),
    "mcrz": (None, 1, lambda t, k: controlled(rz(t), k)),
    "mcp": (None, 1, lambda t, k: controlled(phase_gate(t), k)),
}

ENTANGLING = {"cz", "cnot", "swap", "crz", "crx", "cp", "ccz", "ccx", "mcx", "mcrx", "mcrz", "mcp"}


@dataclass(frozen=True)
class Gate:
    """A named gate applied to ``qubits`` with real ``params``."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in _GATES:
            raise ValueError(f"unknown gate {self.name!r}")
        arity, nparams, _ = _GATES[self.name]
        if arity is not None and len(self.qubits) != arity:
            raise ValueError(f"{self.name} expects {arity} qubits, got {len(self.qubits)}")
        if arity is None and len(self.qubits) < 2:
            raise ValueError(f"{self.name} needs at least one control and a target")
        if len(nparams * (1,)) != len(self.params):
            raise ValueError(f"{self.name} expects {nparams} params, got {len(self.params)}")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("duplicate qubits in gate")

    def matrix(self) -> np.ndarray:
        """Dense little-endian matrix on ``len(qubits)`` qubits.

        For variadic gates the control count is derived from the qubit list
        (controls first, target last).
        """
        arity, _, factory = _GATES[self.name]
        if arity is None:
            k = len(self.qubits) - 1
            mat = factory(*self.params, k) if self.params else factory(k)
            # ``controlled`` places controls in the low slots and the target
            # high, matching qubits=(controls..., target) little-endian.
            return mat
        return factory(*self.params)

    def is_entangling(self) -> bool:
        return self.name in ENTANGLING

    def dagger(self) -> "Gate":
        """Inverse gate (parametrized gates negate, s/t swap with daggers)."""
        self_inverse = {"i", "x", "y", "z", "h", "cz", "cnot", "swap", "ccz", "ccx", "mcx"}
        if self.name in self_inverse:
            return self
        swaps = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in swaps:
            return Gate(swaps[self.name], self.qubits)
        if self.name == "j":
            raise ValueError("j gate inverse is not a single named gate")
        return Gate(self.name, self.qubits, tuple(-p for p in self.params))


@dataclass
class Circuit:
    """An ordered gate list on ``num_qubits`` qubits."""

    num_qubits: int
    gates: List[Gate] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        for g in self.gates:
            self._check_gate(g)

    def _check_gate(self, gate: Gate) -> None:
        if any(q < 0 or q >= self.num_qubits for q in gate.qubits):
            raise ValueError(f"gate {gate} outside register of size {self.num_qubits}")

    def append(self, name: str, qubits: Sequence[int], *params: float) -> "Circuit":
        g = Gate(name, tuple(qubits), tuple(float(p) for p in params))
        self._check_gate(g)
        self.gates.append(g)
        return self

    # Fluent helpers for the common gates.
    def h(self, q: int) -> "Circuit":
        return self.append("h", (q,))

    def x(self, q: int) -> "Circuit":
        return self.append("x", (q,))

    def z(self, q: int) -> "Circuit":
        return self.append("z", (q,))

    def s(self, q: int) -> "Circuit":
        return self.append("s", (q,))

    def rx(self, q: int, theta: float) -> "Circuit":
        return self.append("rx", (q,), theta)

    def ry(self, q: int, theta: float) -> "Circuit":
        return self.append("ry", (q,), theta)

    def rz(self, q: int, theta: float) -> "Circuit":
        return self.append("rz", (q,), theta)

    def j(self, q: int, alpha: float) -> "Circuit":
        return self.append("j", (q,), alpha)

    def cz(self, q0: int, q1: int) -> "Circuit":
        return self.append("cz", (q0, q1))

    def cnot(self, control: int, target: int) -> "Circuit":
        return self.append("cnot", (control, target))

    def rzz(self, q0: int, q1: int, theta: float) -> "Circuit":
        """``exp(-i theta/2 Z Z)`` via the standard CNOT conjugation."""
        return self.cnot(q0, q1).rz(q1, theta).cnot(q0, q1)

    def rxx(self, q0: int, q1: int, theta: float) -> "Circuit":
        """``exp(-i theta/2 X X)`` by basis change to ZZ."""
        self.h(q0).h(q1)
        self.rzz(q0, q1, theta)
        return self.h(q0).h(q1)

    def ryy(self, q0: int, q1: int, theta: float) -> "Circuit":
        """``exp(-i theta/2 Y Y)`` by basis change to ZZ (Y = S X S†)."""
        for q in (q0, q1):
            self.append("sdg", (q,))
            self.h(q)
        self.rzz(q0, q1, theta)
        for q in (q0, q1):
            self.h(q)
            self.s(q)
        return self

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    def compose(self, other: "Circuit") -> "Circuit":
        """Concatenate ``other`` after ``self`` (same register size)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("register size mismatch")
        return Circuit(self.num_qubits, self.gates + other.gates)

    def inverse(self) -> "Circuit":
        return Circuit(self.num_qubits, [g.dagger() for g in reversed(self.gates)])

    # -- execution ---------------------------------------------------------
    def apply_to(self, sv: StateVector) -> StateVector:
        """Apply all gates to ``sv`` in place (and return it)."""
        if sv.num_qubits != self.num_qubits:
            raise ValueError("state register size mismatch")
        for g in self.gates:
            mat = g.matrix()
            if len(g.qubits) == 1:
                sv.apply_1q(mat, g.qubits[0])
            elif len(g.qubits) == 2:
                if g.name == "cz":
                    sv.apply_cz(*g.qubits)
                else:
                    sv.apply_2q(mat, *g.qubits)
            else:
                sv.apply_kq(mat, g.qubits)
        return sv

    def run(self, initial: Optional[StateVector] = None) -> StateVector:
        """Run on ``initial`` (default ``|0...0>``) and return the state."""
        sv = initial.copy() if initial is not None else StateVector.zeros(self.num_qubits)
        return self.apply_to(sv)

    def unitary(self) -> np.ndarray:
        """Dense unitary of the whole circuit (verification-scale only)."""
        u = np.eye(1 << self.num_qubits, dtype=complex)
        for g in self.gates:
            u = operator_on_qubits(g.matrix(), g.qubits, self.num_qubits) @ u
        return u

    # -- accounting --------------------------------------------------------
    def count_entangling(self) -> int:
        """Number of multi-qubit gates (the paper's gate-model resource)."""
        return sum(1 for g in self.gates if g.is_entangling())

    def count_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for g in self.gates:
            out[g.name] = out.get(g.name, 0) + 1
        return out

    def depth(self) -> int:
        """Standard circuit depth (greedy layering by qubit availability)."""
        level: Dict[int, int] = {}
        depth = 0
        for g in self.gates:
            start = max((level.get(q, 0) for q in g.qubits), default=0)
            for q in g.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth
