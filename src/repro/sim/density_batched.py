"""Batched dense density-matrix simulator — B whole mixed states in lockstep.

:class:`BatchedDensityMatrix` carries ``B`` independent density operators in
one ndarray of shape ``(B, 2, ..., 2, 2, ..., 2)``: batch on axis 0, ket
(row) axes ``1..n``, bra (column) axes ``n+1..2n``, little-endian flattening
as everywhere else in the library.  It is the open-system analogue of
:class:`~repro.sim.statevector.BatchedStateVector` and the substrate of the
vectorized density-engine trajectory sampler
(:meth:`repro.mbqc.density_backend.DensityMatrixBackend.sample_batch`).

Unlike the batched stabilizer tableau — where per-shot divergence is
Pauli-only and the GF(2) structure is shared — exact Kraus application
diverges the *full* state per shot, so the batch axis must carry whole
density tensors and memory is the binding constraint: ``B · 4^n`` complex
amplitudes.  Callers bound ``B`` accordingly (the density engine chunks the
shot block against a byte budget).

The per-shot primitives mirror the dense batched sampler's:

- channels apply as exact Kraus maps to every shot at once (the operator
  set is shot-independent — channels are *exact* here, never sampled);
- adaptive measurement takes a ``(B, 2, 2)`` per-shot basis block and
  per-shot sampled (or forced) outcomes, einsum-contracted the way
  :meth:`BatchedStateVector.measure_sampled` does;
- conditional corrections and sampled Pauli faults enter as masked
  per-shot 1q/2q unitaries;
- forced-branch execution mixes readout flips in place
  (:meth:`measure_forced`), two projections per measurement instead of a
  branch split.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.density import DensityMatrix, validate_kraus
from repro.sim.statevector import ZeroProbabilityBranch
from repro.utils.rng import SeedLike, ensure_rng


def _batch_traces(t: np.ndarray, n: int) -> np.ndarray:
    """Per-shot traces of a ``(B,) + (2,)*2n`` density block, shape ``(B,)``."""
    if n == 0:
        return np.real(np.asarray(t))
    k = list(range(1, n + 1))
    return np.real(np.einsum(t, [0] + k + k, [0]))


class BatchedDensityMatrix:
    """``B`` independent n-qubit density operators evolved in lockstep.

    All batch elements share one register layout and undergo the same op
    sequence; amplitudes (and, under masked/sampled ops, the states
    themselves) evolve independently per element.
    """

    def __init__(
        self,
        batch_size: int,
        num_qubits: int = 0,
        tensor: Optional[np.ndarray] = None,
    ):
        if tensor is not None:
            tensor = np.asarray(tensor, dtype=complex)
            if tensor.ndim < 1 or (tensor.ndim - 1) % 2:
                raise ValueError("tensor must have shape (B,) + (2,)*2n")
            n = (tensor.ndim - 1) // 2
            if tensor.shape != (tensor.shape[0],) + (2,) * (2 * n):
                raise ValueError("tensor must have shape (B,) + (2,)*2n")
            if tensor.shape[0] != batch_size:
                raise ValueError(
                    f"batch_size {batch_size} contradicts the tensor's "
                    f"leading dimension {tensor.shape[0]}"
                )
            self._t = tensor
            self._n = n
        else:
            if batch_size < 1:
                raise ValueError("batch_size must be positive")
            if num_qubits < 0:
                raise ValueError("num_qubits must be non-negative")
            t = np.zeros((batch_size,) + (2,) * (2 * num_qubits), dtype=complex)
            t.reshape(batch_size, -1)[:, 0] = 1.0
            self._t = t
            self._n = num_qubits

    # -- constructors --------------------------------------------------------
    @staticmethod
    def from_pure_rows(mat: np.ndarray) -> "BatchedDensityMatrix":
        """``B`` pure states from a ``(B, 2**n)`` little-endian amplitude
        block: shot ``j`` becomes ``|mat[j]><mat[j]|`` (not necessarily
        unit — the trace carries the squared row norm)."""
        mat = np.asarray(mat, dtype=complex)
        if mat.ndim != 2 or mat.shape[0] < 1 or mat.shape[1] < 1:
            raise ValueError("need a 2-D (B, 2**n) amplitude block")
        b, m = mat.shape
        n = int(np.round(np.log2(m)))
        if m != 1 << n:
            raise ValueError("row length must be a power of two")
        t = np.einsum("bi,bj->bij", mat, mat.conj())
        if n == 0:
            return BatchedDensityMatrix(b, tensor=t.reshape(b))
        t = t.reshape((b,) + (2,) * (2 * n))
        # Row-major reshape puts the high qubit first: reverse each group.
        perm = (0,) + tuple(range(n, 0, -1)) + tuple(range(2 * n, n, -1))
        return BatchedDensityMatrix(
            b, tensor=np.ascontiguousarray(t.transpose(perm))
        )

    @staticmethod
    def from_replicas(rho: DensityMatrix, batch_size: int) -> "BatchedDensityMatrix":
        """``batch_size`` copies of one scalar density operator."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        n = rho.num_qubits
        base = rho._t if n else np.asarray(rho._t).reshape(())
        t = np.broadcast_to(base, (batch_size,) + base.shape).copy()
        return BatchedDensityMatrix(batch_size, tensor=t)

    # -- inspection ----------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._t.shape[0]

    @property
    def num_qubits(self) -> int:
        return self._n

    def copy(self) -> "BatchedDensityMatrix":
        return BatchedDensityMatrix(self.batch_size, tensor=self._t.copy())

    def traces(self) -> np.ndarray:
        """Per-shot traces, shape ``(B,)``."""
        return _batch_traces(self._t, self._n).copy()

    def shot(self, j: int) -> DensityMatrix:
        """Shot ``j`` as an independent scalar :class:`DensityMatrix`."""
        t = np.asarray(self._t[j]).copy()
        if self._n == 0:
            t = t.reshape(1, 1)
        return DensityMatrix(tensor=t)

    def to_matrices(self) -> np.ndarray:
        """``(B, 2**n, 2**n)`` little-endian dense matrices (copy)."""
        b, n = self.batch_size, self._n
        if n == 0:
            return self._t.reshape(b, 1, 1).copy()
        perm = (0,) + tuple(range(n, 0, -1)) + tuple(range(2 * n, n, -1))
        return self._t.transpose(perm).reshape(b, 1 << n, 1 << n).copy()

    def probability_rows(self) -> np.ndarray:
        """Per-shot computational-basis probabilities, ``(B, 2**n)`` (the
        little-endian diagonals, clipped at 0)."""
        b, n = self.batch_size, self._n
        if n == 0:
            return np.clip(np.real(self._t).reshape(b, 1), 0.0, None).copy()
        k = list(range(1, n + 1))
        d = np.einsum(self._t, [0] + k + k, [0] + k)
        d = d.transpose((0,) + tuple(range(n, 0, -1))).reshape(b, -1)
        return np.clip(np.real(d), 0.0, None)

    # -- register management -------------------------------------------------
    def _check(self, *qs: int) -> None:
        for q in qs:
            if not 0 <= q < self._n:
                raise ValueError(f"qubit {q} out of range")
        if len(set(qs)) != len(qs):
            raise ValueError("duplicate qubit indices")

    def _check_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.batch_size,):
            raise ValueError("mask must have shape (batch_size,)")
        return mask

    def add_qubit(self, state: np.ndarray, position: Optional[int] = None) -> int:
        """Insert a fresh qubit in pure ``state`` into every shot; returns
        its index.  ``position`` defaults to the end of the register."""
        state = np.asarray(state, dtype=complex)
        if state.shape != (2,):
            raise ValueError("single-qubit state must have shape (2,)")
        pure = np.outer(state, state.conj())  # (ket, bra)
        n = self._n
        pos = n if position is None else int(position)
        if not 0 <= pos <= n:
            raise ValueError(f"position {pos} out of range for {n} qubits")
        if n == 0:
            self._t = self._t.reshape(-1, 1, 1) * pure
            self._n = 1
            return 0
        t = np.multiply.outer(self._t, pure)  # batch, kets, bras, ket, bra
        t = np.moveaxis(t, 2 * n + 1, 1 + pos)
        t = np.moveaxis(t, 2 * n + 2, 1 + (n + 1) + pos)
        self._t = t
        self._n = n + 1
        return pos

    def permute(self, order: Sequence[int]) -> None:
        """Reorder qubits: new qubit ``i`` is old qubit ``order[i]``."""
        n = self._n
        order = [int(q) for q in order]
        if sorted(order) != list(range(n)):
            raise ValueError(f"order must be a permutation of 0..{n - 1}")
        if n:
            perm = (0,) + tuple(1 + q for q in order) + tuple(
                1 + n + q for q in order
            )
            self._t = self._t.transpose(perm)

    def discard(self, q: int) -> None:
        """Trace out qubit ``q`` of every shot (the batched partial trace),
        retiring it from the register."""
        self._check(q)
        n = self._n
        self._t = np.trace(self._t, axis1=1 + q, axis2=1 + n + q)
        self._n = n - 1

    # -- unitaries -----------------------------------------------------------
    def _conjugate_1q(self, t: np.ndarray, u: np.ndarray, q: int) -> np.ndarray:
        """``U · U†`` on one qubit of a ``(B,)+(2,)*2n`` block ``t``."""
        n = self._n
        out = np.tensordot(u, t, axes=([1], [1 + q]))
        out = np.moveaxis(out, 0, 1 + q)
        out = np.tensordot(u.conj(), out, axes=([1], [1 + n + q]))
        return np.moveaxis(out, 0, 1 + n + q)

    def _conjugate_2q(
        self, t: np.ndarray, op: np.ndarray, q0: int, q1: int
    ) -> np.ndarray:
        n = self._n
        out = np.tensordot(op, t, axes=([2, 3], [1 + q1, 1 + q0]))
        out = np.moveaxis(out, [0, 1], [1 + q1, 1 + q0])
        out = np.tensordot(op.conj(), out, axes=([2, 3], [1 + n + q1, 1 + n + q0]))
        return np.moveaxis(out, [0, 1], [1 + n + q1, 1 + n + q0])

    def apply_1q(self, u: np.ndarray, q: int) -> None:
        """``ρ ← U ρ U†`` on qubit ``q`` of every shot."""
        self._check(q)
        self._t = self._conjugate_1q(self._t, np.asarray(u, dtype=complex), q)

    def apply_1q_masked(self, u: np.ndarray, q: int, mask: np.ndarray) -> None:
        """``ρ ← U ρ U†`` on qubit ``q`` of the masked shots only — the
        primitive behind per-shot conditional corrections and sampled Pauli
        faults."""
        self._check(q)
        mask = self._check_mask(mask)
        if not mask.any():
            return
        self._t[mask] = self._conjugate_1q(
            self._t[mask], np.asarray(u, dtype=complex), q
        )

    def apply_cz(self, q0: int, q1: int) -> None:
        """Batched controlled-Z: ``CZ ρ CZ†`` is a pure sign pattern — flip
        the ``|11>`` slice of the ket group and of the bra group in place,
        no tensordot needed (the entangler fast path of the compiled-op
        sweep)."""
        self._check(q0, q1)
        n = self._n
        for a0, a1 in ((1 + q0, 1 + q1), (1 + n + q0, 1 + n + q1)):
            idx = [slice(None)] * self._t.ndim
            idx[a0] = 1
            idx[a1] = 1
            self._t[tuple(idx)] *= -1.0

    def apply_2q(self, u: np.ndarray, q0: int, q1: int) -> None:
        """``ρ ← U ρ U†`` for a two-qubit ``u`` (``4x4``, little-endian)."""
        self._check(q0, q1)
        op = np.asarray(u, dtype=complex).reshape(2, 2, 2, 2)
        self._t = self._conjugate_2q(self._t, op, q0, q1)

    def apply_2q_masked(
        self, u: np.ndarray, q0: int, q1: int, mask: np.ndarray
    ) -> None:
        """Two-qubit conjugation on the masked shots only.

        Substrate-only today: the density engine's channels are exact, so
        its sweeps mask 1q corrections only — this is the 2q counterpart
        for consumers sampling per-shot two-qubit divergence (e.g. a
        future correlated-fault injector)."""
        self._check(q0, q1)
        mask = self._check_mask(mask)
        if not mask.any():
            return
        op = np.asarray(u, dtype=complex).reshape(2, 2, 2, 2)
        self._t[mask] = self._conjugate_2q(self._t[mask], op, q0, q1)

    def apply_kraus(
        self,
        kraus: Sequence[np.ndarray],
        qubits: Union[int, Sequence[int]],
        check: bool = True,
    ) -> None:
        """``ρ ← Σ_k K ρ K†`` on every shot (one or more qubits,
        little-endian).  The operator set is shot-independent — exact
        channels never diverge the schedule, only the amplitudes."""
        qs = (qubits,) if isinstance(qubits, (int, np.integer)) else tuple(qubits)
        self._check(*qs)
        if check:
            ops = validate_kraus(kraus, where=f"Kraus set on qubits {qs}")
        else:
            ops = tuple(np.asarray(k, dtype=complex) for k in kraus)
        a = len(qs)
        if ops[0].shape[0] != 1 << a:
            raise ValueError(
                f"Kraus operators act on {ops[0].shape[0].bit_length() - 1} "
                f"qubits, got {a} targets"
            )
        n = self._n
        # Collapse the whole set into one superoperator acting jointly on
        # the (ket, bra) axis pair: S[i,j,a,b] = Σ_k K[i,a]·K*[j,b].  One
        # tensordot over the full batch replaces 2·len(kraus) passes — the
        # channel einsum that makes exact noise affordable per chunk.
        d = 1 << a
        ks = np.stack([k.reshape(d, d) for k in ops])
        s = np.einsum("kia,kjb->ijab", ks, ks.conj())
        s = s.reshape((2,) * (4 * a))
        # Row-major reshape puts the high (last) qubit first in each index
        # group, so the tensor axes pair with the targets reversed.
        rq = [1 + q for q in reversed(qs)]
        bq = [1 + n + q for q in reversed(qs)]
        t = np.tensordot(
            s, self._t, axes=(list(range(2 * a, 4 * a)), rq + bq)
        )
        self._t = np.moveaxis(t, list(range(2 * a)), rq + bq)

    # -- measurement ---------------------------------------------------------
    def _check_vecs(self, vecs: np.ndarray) -> np.ndarray:
        vecs = np.asarray(vecs, dtype=complex)
        if vecs.shape != (self.batch_size, 2, 2):
            raise ValueError("vecs must have shape (batch_size, 2, 2)")
        return vecs

    def _project_one(self, q: int, sel: np.ndarray) -> np.ndarray:
        """One per-shot projection of qubit ``q`` onto ``sel`` (``(B, 2)``,
        one basis vector per shot): returns the ``(B,)+(2,)*2(n-1)`` block
        with qubit ``q`` removed, higher slots shifted down."""
        n = self._n
        t = np.moveaxis(self._t, 1 + q, -1)  # ket q last
        r = np.einsum("b...i,bi->b...", t, sel.conj())
        # With ket q gone, bra q sits at axis n + q.
        return np.einsum("b...i,bi->b...", np.moveaxis(r, n + q, -1), sel)

    def _project_both(
        self, q: int, vecs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Both outcome projections of qubit ``q`` under per-shot bases.

        ``vecs`` is a ``(B, 2, 2)`` block (``vecs[j, m]`` is shot ``j``'s
        basis vector for outcome ``m``).  Returns ``(t0, t1, n0, n1)``:
        the two projected blocks and their per-shot traces.
        """
        t0 = self._project_one(q, vecs[:, 0])
        t1 = self._project_one(q, vecs[:, 1])
        n0 = _batch_traces(t0, self._n - 1)
        n1 = _batch_traces(t1, self._n - 1)
        return t0, t1, n0, n1

    def _scale_rows(self, t: np.ndarray, denom: np.ndarray) -> np.ndarray:
        return t / np.maximum(denom, 1e-300).reshape(
            (-1,) + (1,) * (t.ndim - 1)
        )

    def measure_sampled(
        self,
        q: int,
        vecs: np.ndarray,
        u: Optional[np.ndarray] = None,
        rng: SeedLike = None,
        force: Optional[int] = None,
        renormalize: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-shot adaptive measurement of qubit ``q`` (removing it).

        ``vecs`` is a ``(B, 2, 2)`` per-shot basis block (each shot can
        measure in its own basis — what keeps shots with different signal
        parities in one lockstep sweep).  Outcomes are drawn per shot from
        the Born rule: shot ``j`` records 0 iff ``u[j] < p0[j]``, where
        ``u`` is a pre-drawn ``(B,)`` uniform block (the whole-block draw
        schedule shared with the per-shot reference loop) or, when omitted,
        one ``rng.random(B)`` call.  ``force`` pins every shot's outcome
        instead (raising :class:`ZeroProbabilityBranch` for ~zero-weight
        shots, no randomness consumed).  Returns ``(outcomes, probs)`` as
        ``(B,)`` arrays; with ``renormalize`` each post-state keeps unit
        trace.
        """
        self._check(q)
        b = self.batch_size
        t0, t1, n0, n1 = self._project_both(q, self._check_vecs(vecs))
        total = n0 + n1
        if np.any(total < 1e-300):
            raise ValueError("cannot measure a zero-trace state")
        p0 = n0 / total
        if force is None:
            if u is None:
                u = ensure_rng(rng).random(b)
            else:
                u = np.asarray(u, dtype=float)
                if u.shape != (b,):
                    raise ValueError("u must have shape (batch_size,)")
            outcomes = (u >= p0).astype(np.int8)
        else:
            if force not in (0, 1):
                raise ValueError("forced outcome must be 0 or 1")
            outcomes = np.full(b, force, dtype=np.int8)
        probs = np.where(outcomes == 0, p0, 1.0 - p0)
        if force is not None and np.any(probs < 1e-12):
            bad = int(np.argmin(probs))
            raise ZeroProbabilityBranch(
                f"forced outcome {force} on qubit {q} has probability ~0 "
                f"for batch element {bad}"
            )
        pick = outcomes.astype(bool).reshape((b,) + (1,) * (t0.ndim - 1))
        t = np.where(pick, t1, t0)
        if renormalize:
            t = self._scale_rows(t, np.where(outcomes == 0, n0, n1))
        self._t = t
        self._n -= 1
        return outcomes, probs

    def measure_split(self, q: int, vecs: np.ndarray) -> np.ndarray:
        """Project qubit ``q`` of each shot onto **both** outcomes, doubling
        the batch axis — the branch-point kernel of the frontier integrator
        (:meth:`repro.mbqc.density_backend.DensityMatrixBackend.integrate`).

        Children interleave parent-major/outcome-minor: new element ``2j``
        is parent ``j``'s outcome-0 projection, ``2j + 1`` its outcome-1
        projection — the depth-first leaf order of the scalar recursion.
        Projections stay **unnormalized** (each child's trace is the
        parent's incoming branch weight times the outcome probability), so
        summing children back together reconstructs the parent exactly.
        Returns the ``(2B,)`` child traces.
        """
        self._check(q)
        vecs = self._check_vecs(vecs)
        t0 = self._project_one(q, vecs[:, 0])
        t1 = self._project_one(q, vecs[:, 1])
        b = self.batch_size
        t = np.stack((t0, t1), axis=1).reshape((2 * b,) + t0.shape[1:])
        self._t = t
        self._n -= 1
        return _batch_traces(t, self._n)

    def measure_forced(
        self,
        q: int,
        vecs: np.ndarray,
        outcomes: np.ndarray,
        flip_p: float = 0.0,
        renormalize: bool = True,
        allow_zero: bool = False,
    ) -> np.ndarray:
        """Project qubit ``q`` of each shot onto its *recorded* outcome,
        folding readout flips in as a two-term mixture.

        ``outcomes[j]`` is shot ``j``'s recorded bit.  With ``flip_p`` > 0
        the recorded bit may come from either true outcome, so the
        post-state is ``(1-f)·ρ_r + f·ρ_{r⊕1}`` with branch probability
        ``(1-f)·p_r + f·p_{r⊕1}`` — the batched form of the forced-branch
        readout mixing in the scalar density engine.  Returns the per-shot
        branch probabilities (relative to each shot's incoming trace);
        ~zero-probability shots raise :class:`ZeroProbabilityBranch` unless
        ``allow_zero`` (the cross-branch Choi batch runs *all* records of a
        pattern at once and filters unreachable ones by weight afterwards —
        their elements stay identically zero instead of aborting the block).
        """
        self._check(q)
        b = self.batch_size
        vecs = self._check_vecs(vecs)
        outcomes = np.asarray(outcomes, dtype=np.int8)
        if outcomes.shape != (b,):
            raise ValueError("outcomes must have shape (batch_size,)")
        if np.any((outcomes != 0) & (outcomes != 1)):
            raise ValueError("outcomes must be 0 or 1")
        if not 0.0 <= flip_p <= 1.0:
            raise ValueError("flip_p must be a probability")
        if flip_p > 0.0:
            t0, t1, n0, n1 = self._project_both(q, vecs)
            total = n0 + n1
            pick = outcomes.astype(bool).reshape((b,) + (1,) * (t0.ndim - 1))
            t = (1.0 - flip_p) * np.where(pick, t1, t0)
            t += flip_p * np.where(pick, t0, t1)
            probs = (1.0 - flip_p) * np.where(outcomes == 0, n0, n1)
            probs += flip_p * np.where(outcomes == 0, n1, n0)
        else:
            # Without flip mixing only the recorded outcome's projection is
            # needed: gather each shot's basis vector and project once (the
            # incoming trace supplies the normalizer) — half the contraction
            # work on the forced-branch hot path.
            total = _batch_traces(self._t, self._n)
            t = self._project_one(q, vecs[np.arange(b), outcomes])
            probs = _batch_traces(t, self._n - 1)
        if not allow_zero and np.any(total < 1e-300):
            raise ValueError("cannot measure a zero-trace state")
        rel = probs / np.maximum(total, 1e-300)
        if not allow_zero and np.any(rel < 1e-12):
            bad = int(np.argmin(rel))
            raise ZeroProbabilityBranch(
                f"forced outcome {int(outcomes[bad])} on qubit {q} has "
                f"probability ~0 for batch element {bad}"
            )
        if renormalize:
            t = self._scale_rows(t, probs)
        self._t = t
        self._n -= 1
        return rel
